//! Stress recovery and extraction of the quantities the EM flow consumes.

use crate::assembly::local_coords;
use crate::element::{element_center_stress, hydrostatic, von_mises};
use crate::geometry::{mat_index, CharacterizationModel};
use crate::mesh::HexMesh;

/// One sample of a line scan through the stress field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineSample {
    /// Coordinate along the scan axis, µm.
    pub position: f64,
    /// Hydrostatic stress, MPa.
    pub hydrostatic_mpa: f64,
    /// Material index of the sampled cell (see [`mat_index`]).
    pub material: u8,
}

/// The solved stress field of a characterization primitive.
///
/// Holds the mesh, the full displacement vector and per-cell centroid
/// stresses, and knows how to produce the paper's figures (line scans) and
/// the per-via peak stresses consumed by the EM model.
#[derive(Debug, Clone)]
pub struct StressField {
    model: CharacterizationModel,
    mesh: HexMesh,
    /// Full nodal displacement vector (length `3 * node_count`), µm.
    displacements: Vec<f64>,
    /// Voigt stress per cell (None for void cells), Pa.
    stress: Vec<Option<[f64; 6]>>,
}

impl StressField {
    /// Recovers centroid stresses for every occupied cell from the full
    /// displacement vector (length `3 * node_count`).
    ///
    /// # Panics
    ///
    /// Panics if `displacements.len() != 3 * mesh.node_count()`.
    pub fn from_displacements(
        model: CharacterizationModel,
        mesh: HexMesh,
        displacements: &[f64],
    ) -> Self {
        assert_eq!(displacements.len(), 3 * mesh.node_count());
        let dt = model.delta_t();
        let mut stress = vec![None; mesh.cell_count()];
        for (i, j, k, mat_idx) in mesh.occupied_cells() {
            let nodes = mesh.cell_nodes(i, j, k);
            let mut ue = [0.0f64; 24];
            for (a, &n) in nodes.iter().enumerate() {
                for axis in 0..3 {
                    ue[3 * a + axis] = displacements[3 * n + axis];
                }
            }
            let coords = local_coords(mesh.cell_size(i, j, k));
            let sigma =
                element_center_stress(&coords, &mesh.materials()[mat_idx as usize], dt, &ue);
            stress[mesh.cell_index(i, j, k)] = Some(sigma);
        }
        StressField {
            model,
            mesh,
            displacements: displacements.to_vec(),
            stress,
        }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &HexMesh {
        &self.mesh
    }

    /// The full nodal displacement vector the field was recovered from
    /// (length `3 * node_count`), µm.
    ///
    /// Persisting this vector is enough to reconstruct the entire field
    /// bit-exactly: meshing is deterministic, so
    /// [`StressField::from_displacements`] on a rebuilt mesh reproduces
    /// every derived stress value.
    pub fn displacements(&self) -> &[f64] {
        &self.displacements
    }

    /// The model this field was computed for.
    pub fn model(&self) -> &CharacterizationModel {
        &self.model
    }

    /// Voigt stress of cell `(i, j, k)`, Pa; `None` for void cells.
    pub fn cell_stress(&self, i: usize, j: usize, k: usize) -> Option<[f64; 6]> {
        self.stress[self.mesh.cell_index(i, j, k)]
    }

    /// Hydrostatic stress of cell `(i, j, k)`, Pa.
    pub fn cell_hydrostatic(&self, i: usize, j: usize, k: usize) -> Option<f64> {
        self.cell_stress(i, j, k).map(|s| hydrostatic(&s))
    }

    /// Von Mises stress of cell `(i, j, k)`, Pa.
    pub fn cell_von_mises(&self, i: usize, j: usize, k: usize) -> Option<f64> {
        self.cell_stress(i, j, k).map(|s| von_mises(&s))
    }

    /// Scans hydrostatic stress along x at fixed `(y, z)` — the paper's
    /// Figs. 1, 6, 7 plot exactly this through the lower metal beneath the
    /// via rows.
    ///
    /// Returns one sample per occupied cell column intersected by the line.
    pub fn line_scan_x(&self, y: f64, z: f64) -> Vec<LineSample> {
        let (nx, _, _) = self.mesh.dims();
        let Some(j) = interval_index(self.mesh.ys(), y) else {
            return Vec::new();
        };
        let Some(k) = interval_index(self.mesh.zs(), z) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(nx);
        for i in 0..nx {
            let idx = self.mesh.cell_index(i, j, k);
            if let (Some(sigma), Some(mat)) = (self.stress[idx], self.mesh.cell_material(idx)) {
                out.push(LineSample {
                    position: self.mesh.cell_center(i, j, k)[0],
                    hydrostatic_mpa: hydrostatic(&sigma) / 1e6,
                    material: mat,
                });
            }
        }
        out
    }

    /// The scan height used by the paper's figures: the middle of the lower
    /// metal (`Mx`) band, where voids nucleate beneath vias.
    pub fn lower_metal_scan_z(&self) -> f64 {
        let z = self.model.stack.z_levels();
        0.5 * (z[2] + z[3])
    }

    /// Line scan along x through a given via-array **row** (0-based), at the
    /// lower-metal scan height — one curve of the paper's Fig. 1 / 7 plots.
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the array.
    pub fn via_row_scan(&self, row: usize) -> Vec<LineSample> {
        assert!(
            row < self.model.array.rows,
            "row {row} out of range for a {}-row array",
            self.model.array.rows
        );
        let (cx, cy) = self.model.center();
        let centers = self.model.array.via_centers(cx, cy);
        let row_y = centers[row * self.model.array.cols].1;
        self.line_scan_x(row_y, self.lower_metal_scan_z())
    }

    /// Peak tensile hydrostatic stress (Pa) in the lower metal beneath each
    /// via, row-major — the `σ_T` values the paper's TTF model consumes
    /// ("for each individual via, the thermomechanical stress is taken to be
    /// the peak value in the via", §2.3).
    pub fn per_via_peak_stress(&self) -> Vec<f64> {
        let (cx, cy) = self.model.center();
        let z = self.model.stack.z_levels();
        let half = self.model.array.via_width / 2.0;
        let (nx, ny, nz) = self.mesh.dims();
        let mut peaks = vec![f64::NEG_INFINITY; self.model.array.count()];
        let centers = self.model.array.via_centers(cx, cy);
        for k in 0..nz {
            let zc = 0.5 * (self.mesh.zs()[k] + self.mesh.zs()[k + 1]);
            // Look in the upper half of the Mx band (void site: the Cu/cap
            // interface under the via).
            if zc < 0.5 * (z[2] + z[3]) || zc > z[3] {
                continue;
            }
            for j in 0..ny {
                for i in 0..nx {
                    let idx = self.mesh.cell_index(i, j, k);
                    let Some(sigma) = self.stress[idx] else {
                        continue;
                    };
                    if self.mesh.cell_material(idx) != Some(mat_index::COPPER) {
                        continue;
                    }
                    let c = self.mesh.cell_center(i, j, k);
                    for (v, (vx, vy)) in centers.iter().enumerate() {
                        if (c[0] - vx).abs() <= half && (c[1] - vy).abs() <= half {
                            peaks[v] = peaks[v].max(hydrostatic(&sigma));
                        }
                    }
                }
            }
        }
        // Fall back to the nearest lower-metal copper cell for any via whose
        // footprint contains no cell center (possible on very coarse meshes).
        for (v, peak) in peaks.iter_mut().enumerate() {
            if !peak.is_finite() {
                *peak = self.nearest_lower_metal_stress(centers[v]);
            }
        }
        peaks
    }

    /// Maximum hydrostatic stress over all copper cells, Pa.
    pub fn peak_copper_stress(&self) -> f64 {
        let (nx, ny, nz) = self.mesh.dims();
        let mut peak = f64::NEG_INFINITY;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let idx = self.mesh.cell_index(i, j, k);
                    if self.mesh.cell_material(idx) == Some(mat_index::COPPER) {
                        if let Some(s) = self.stress[idx] {
                            peak = peak.max(hydrostatic(&s));
                        }
                    }
                }
            }
        }
        peak
    }

    fn nearest_lower_metal_stress(&self, (vx, vy): (f64, f64)) -> f64 {
        let z = self.model.stack.z_levels();
        let (nx, ny, nz) = self.mesh.dims();
        let mut best = (f64::INFINITY, 0.0);
        for k in 0..nz {
            let zc = 0.5 * (self.mesh.zs()[k] + self.mesh.zs()[k + 1]);
            if zc < z[2] || zc > z[3] {
                continue;
            }
            for j in 0..ny {
                for i in 0..nx {
                    let idx = self.mesh.cell_index(i, j, k);
                    if self.mesh.cell_material(idx) != Some(mat_index::COPPER) {
                        continue;
                    }
                    if let Some(s) = self.stress[idx] {
                        let c = self.mesh.cell_center(i, j, k);
                        let d = (c[0] - vx).powi(2) + (c[1] - vy).powi(2);
                        if d < best.0 {
                            best = (d, hydrostatic(&s));
                        }
                    }
                }
            }
        }
        best.1
    }
}

/// Index of the interval of `planes` containing `v`, or `None` if outside.
fn interval_index(planes: &[f64], v: f64) -> Option<usize> {
    if v < planes[0] || v > *planes.last()? {
        return None;
    }
    let i = planes.partition_point(|&p| p <= v);
    Some(i.saturating_sub(1).min(planes.len() - 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{CharacterizationModel, ViaArrayGeometry};
    use crate::model::ThermalStressAnalysis;

    fn solved_field() -> StressField {
        let model = CharacterizationModel {
            array: ViaArrayGeometry::square(1, 0.5, 0.5),
            wire_width: 1.5,
            margin: 0.5,
            resolution: 0.5,
            ..CharacterizationModel::default()
        };
        ThermalStressAnalysis::new(model).run().unwrap()
    }

    #[test]
    fn line_scan_outside_domain_is_empty() {
        let f = solved_field();
        assert!(f.line_scan_x(-1.0, f.lower_metal_scan_z()).is_empty());
        assert!(f.line_scan_x(0.5, 1e9).is_empty());
    }

    #[test]
    fn scan_height_sits_inside_the_lower_metal() {
        let f = solved_field();
        let z = f.lower_metal_scan_z();
        let levels = f.model().stack.z_levels();
        assert!(z > levels[2] && z < levels[3]);
    }

    #[test]
    fn cell_queries_agree_with_scan_values() {
        let f = solved_field();
        let scan = f.via_row_scan(0);
        assert!(!scan.is_empty());
        // Von Mises and hydrostatic are finite wherever stress exists.
        let (nx, ny, nz) = f.mesh().dims();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if let Some(h) = f.cell_hydrostatic(i, j, k) {
                        assert!(h.is_finite());
                        assert!(f.cell_von_mises(i, j, k).unwrap() >= 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn peak_copper_stress_bounds_per_via_peaks() {
        let f = solved_field();
        let global = f.peak_copper_stress();
        for p in f.per_via_peak_stress() {
            assert!(p <= global + 1e-9);
        }
    }

    #[test]
    fn interval_index_basics() {
        let p = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(interval_index(&p, 0.5), Some(0));
        assert_eq!(interval_index(&p, 1.0), Some(1));
        assert_eq!(interval_index(&p, 3.0), Some(2));
        assert_eq!(interval_index(&p, -0.1), None);
        assert_eq!(interval_index(&p, 3.1), None);
    }
}
