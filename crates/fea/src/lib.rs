//! A from-scratch 3-D linear thermoelastic finite-element engine for
//! copper dual-damascene (Cu DD) interconnect stacks.
//!
//! This crate replaces the ABAQUS runs of the paper ("Incorporating the Role
//! of Stress on Electromigration in Power Grids with Via Arrays", DAC 2017):
//! it meshes the Cu DD structure of the paper's Fig. 2 — silicon substrate,
//! SiCOH inter-layer dielectric, Ta-lined copper wires and vias, Si₃N₄
//! capping — as axis-aligned 8-node hexahedra, assembles the isotropic
//! thermoelastic stiffness system for the anneal-to-operating temperature
//! drop, solves it, and recovers the **hydrostatic stress** `σ_H =
//! (σxx + σyy + σzz)/3` that drives void nucleation.
//!
//! The flow mirrors the paper's §3 characterization methodology:
//!
//! 1. describe a via-array intersection primitive
//!    ([`geometry::CharacterizationModel`]) — Plus-, T- or L-shaped pattern
//!    ([`geometry::IntersectionPattern`]), array configuration
//!    ([`geometry::ViaArrayGeometry`]), wire width, layer stack
//!    ([`geometry::CuDdStack`]),
//! 2. voxelize it into a [`mesh::HexMesh`] with material IDs from the
//!    paper's Table 1 ([`material::table1`]),
//! 3. solve the thermoelastic problem ([`model::ThermalStressAnalysis`]),
//! 4. extract line scans (the paper's Figs. 1, 6, 7) and per-via peak
//!    stresses ([`stress::StressField`]), which feed the EM layer.
//!
//! # Example
//!
//! Compute the hydrostatic stress map of a tiny 2×2 via-array primitive
//! (coarse mesh so the example runs quickly):
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use emgrid_fea::geometry::{CharacterizationModel, IntersectionPattern, ViaArrayGeometry};
//! use emgrid_fea::model::ThermalStressAnalysis;
//!
//! let model = CharacterizationModel {
//!     pattern: IntersectionPattern::Plus,
//!     array: ViaArrayGeometry::square(2, 0.5, 1.0),
//!     resolution: 0.25,
//!     ..CharacterizationModel::default()
//! };
//! let analysis = ThermalStressAnalysis::new(model);
//! let field = analysis.run()?;
//! let peaks = field.per_via_peak_stress();
//! assert_eq!(peaks.len(), 4);
//! // Annealing from 325 °C to 105 °C leaves the copper in tension.
//! assert!(peaks.iter().all(|&p| p > 0.0));
//! # Ok(())
//! # }
//! ```

// Indexed loops over multiple parallel arrays are the clearest form for
// these numerical kernels; silence clippy's iterator suggestion crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod assembly;
pub mod element;
pub mod export;
pub mod geometry;
pub mod material;
pub mod mesh;
pub mod model;
pub mod stress;
pub mod verification;

pub use assembly::{BoundaryConditions, FaceBc};
pub use geometry::{CharacterizationModel, CuDdStack, IntersectionPattern, ViaArrayGeometry};
pub use material::{table1, Material, MaterialKind};
pub use mesh::HexMesh;
pub use model::{FeaError, SolveMethod, SolveStats, ThermalStressAnalysis};
pub use stress::StressField;
