//! Verification problems with exact solutions and mesh-convergence
//! utilities.
//!
//! A finite-element engine substituting for ABAQUS needs evidence it
//! converges to the right answers. This module provides canonical
//! thermoelastic problems whose exact solutions are known, a refinement
//! driver, and an observed-order-of-convergence estimator. They double as
//! strong regression tests (run in this module's test suite) and as a user
//!-facing way to validate custom material stacks.

use crate::assembly::{assemble, BoundaryConditions, FaceBc};
use crate::material::Material;
use crate::mesh::HexMesh;
use crate::model::FeaError;
use crate::stress::StressField;
use emgrid_sparse::{FactorOptions, LdlFactor};

/// A uniform block of one material under a thermal load, with laterally
/// confined (sliding) walls, sliding bottom and free top.
///
/// Exact solution: in-plane biaxial stress
/// `σxx = σyy = −E α ΔT / (1 − ν)`, `σzz = 0`, hence hydrostatic
/// `σ_H = −2 E α ΔT / (3 (1 − ν))`, uniform everywhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfinedBlock {
    /// The block material.
    pub material: Material,
    /// Temperature change from the stress-free state, K.
    pub delta_t: f64,
    /// Cube edge length, µm.
    pub edge: f64,
}

impl ConfinedBlock {
    /// Exact in-plane stress, Pa.
    pub fn exact_sigma_xx(&self) -> f64 {
        -self.material.youngs_modulus * self.material.cte * self.delta_t
            / (1.0 - self.material.poisson_ratio)
    }

    /// Exact hydrostatic stress, Pa.
    pub fn exact_hydrostatic(&self) -> f64 {
        2.0 * self.exact_sigma_xx() / 3.0
    }

    /// Solves the problem on an `n × n × n` mesh and returns the maximum
    /// relative error of the centroid hydrostatic stress over all cells.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn hydrostatic_error(&self, n: usize) -> Result<f64, FeaError> {
        let planes: Vec<f64> = (0..=n).map(|i| self.edge * i as f64 / n as f64).collect();
        let mut mesh = HexMesh::new(planes.clone(), planes.clone(), planes, vec![self.material]);
        mesh.fill_where(0, |_, _, _| true);
        let bc = BoundaryConditions {
            x_min: FaceBc::Sliding,
            x_max: FaceBc::Sliding,
            y_min: FaceBc::Sliding,
            y_max: FaceBc::Sliding,
            z_min: FaceBc::Sliding,
            z_max: FaceBc::Free,
        };
        let sys = assemble(&mesh, &bc, self.delta_t);
        let u = LdlFactor::factor_with(&sys.stiffness, &FactorOptions::default())?.solve(&sys.load);
        let full = sys.dof_map.expand(&u);
        // Reuse the stress recovery through a StressField-like direct path.
        let exact = self.exact_hydrostatic();
        let mut worst = 0.0f64;
        for (i, j, k, mat) in mesh.occupied_cells() {
            let nodes = mesh.cell_nodes(i, j, k);
            let mut ue = [0.0f64; 24];
            for (a, &nd) in nodes.iter().enumerate() {
                for axis in 0..3 {
                    ue[3 * a + axis] = full[3 * nd + axis];
                }
            }
            let coords = crate::assembly::local_coords(mesh.cell_size(i, j, k));
            let sigma = crate::element::element_center_stress(
                &coords,
                &mesh.materials()[mat as usize],
                self.delta_t,
                &ue,
            );
            let h = crate::element::hydrostatic(&sigma);
            worst = worst.max(((h - exact) / exact).abs());
        }
        Ok(worst)
    }
}

/// Observed order of convergence from errors at three uniformly refined
/// resolutions `(e_h, e_{h/2}, e_{h/4})`:
/// `p = log2(e_h − e_{h/2}) − log2(e_{h/2} − e_{h/4})` for monotone
/// sequences, or the simpler two-level estimate when differences vanish.
pub fn observed_order(errors: &[f64; 3]) -> f64 {
    let d1 = (errors[0] - errors[1]).abs().max(f64::MIN_POSITIVE);
    let d2 = (errors[1] - errors[2]).abs().max(f64::MIN_POSITIVE);
    (d1 / d2).log2()
}

/// Relative discrepancy between the per-via peaks of two stress fields of
/// the same model at different resolutions — a practical convergence
/// check for characterization runs.
///
/// # Panics
///
/// Panics if the fields have different via counts.
pub fn peak_stress_discrepancy(coarse: &StressField, fine: &StressField) -> f64 {
    let a = coarse.per_via_peak_stress();
    let b = fine.per_via_peak_stress();
    assert_eq!(a.len(), b.len(), "fields must share the array config");
    a.iter()
        .zip(&b)
        .map(|(x, y)| ((x - y) / y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{CharacterizationModel, ViaArrayGeometry};
    use crate::material::{table1, MaterialKind};
    use crate::model::ThermalStressAnalysis;

    #[test]
    fn confined_block_is_exact_at_any_resolution() {
        // The exact solution is linear in position, which trilinear
        // elements represent exactly: the error must be machine-level even
        // on a 2x2x2 mesh.
        let p = ConfinedBlock {
            material: table1(MaterialKind::Copper),
            delta_t: -220.0,
            edge: 1.0,
        };
        for n in [2usize, 4] {
            let err = p.hydrostatic_error(n).unwrap();
            assert!(err < 1e-9, "n={n}: error {err}");
        }
        assert!(p.exact_hydrostatic() > 0.0, "cooling gives tension");
    }

    #[test]
    fn exact_values_scale_with_material() {
        let cu = ConfinedBlock {
            material: table1(MaterialKind::Copper),
            delta_t: -220.0,
            edge: 1.0,
        };
        let ild = ConfinedBlock {
            material: table1(MaterialKind::Ild),
            ..cu
        };
        // Copper's higher E·α product means more stress.
        assert!(cu.exact_sigma_xx() > ild.exact_sigma_xx());
    }

    #[test]
    fn observed_order_of_a_quadratic_sequence_is_two() {
        // e(h) = C h²: errors at h, h/2, h/4.
        let errors = [1.0, 0.25, 0.0625];
        let p = observed_order(&errors);
        assert!((p - 2.0).abs() < 1e-9, "order {p}");
    }

    #[test]
    fn via_peak_stress_converges_under_refinement() {
        // The engineering check used before trusting a characterization:
        // refine the mesh, confirm the per-via peaks move by little.
        let base = CharacterizationModel {
            array: ViaArrayGeometry::square(2, 0.5, 1.0),
            wire_width: 2.0,
            margin: 0.5,
            resolution: 0.5,
            ..CharacterizationModel::default()
        };
        let fine_model = CharacterizationModel {
            resolution: 0.3,
            ..base
        };
        let coarse = ThermalStressAnalysis::new(base).run().unwrap();
        let fine = ThermalStressAnalysis::new(fine_model).run().unwrap();
        let d = peak_stress_discrepancy(&coarse, &fine);
        assert!(d < 0.35, "coarse-to-fine discrepancy {d}");
        // And the qualitative invariant survives refinement: tension.
        assert!(fine.per_via_peak_stress().iter().all(|&p| p > 0.0));
    }
}
