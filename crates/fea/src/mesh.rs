//! Structured, axis-aligned hexahedral meshes with per-cell materials.
//!
//! The Cu DD primitives this engine characterizes are unions of axis-aligned
//! boxes (wires, vias, liners, blanket layers), so a tensor-product grid
//! whose planes conform to every feature boundary meshes them exactly.
//! Cells may be void (`None` material) which simply omits them from the
//! assembled system.

use crate::material::Material;

/// A structured hexahedral mesh on a tensor-product grid.
///
/// Grid planes are given by the coordinate arrays `xs`, `ys`, `zs`
/// (lengths `nx+1`, `ny+1`, `nz+1`); cell `(i, j, k)` spans
/// `[xs[i], xs[i+1]] × [ys[j], ys[j+1]] × [zs[k], zs[k+1]]` and carries an
/// optional material index into [`HexMesh::materials`].
#[derive(Debug, Clone)]
pub struct HexMesh {
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    cells: Vec<Option<u8>>,
    materials: Vec<Material>,
}

impl HexMesh {
    /// Creates a mesh with all cells void.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate array has fewer than 2 entries or is not
    /// strictly increasing, or if more than 255 materials are supplied.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, zs: Vec<f64>, materials: Vec<Material>) -> Self {
        for (name, v) in [("xs", &xs), ("ys", &ys), ("zs", &zs)] {
            assert!(v.len() >= 2, "{name} needs at least two planes");
            assert!(
                v.windows(2).all(|w| w[1] > w[0]),
                "{name} must be strictly increasing"
            );
        }
        assert!(materials.len() <= 255, "at most 255 materials");
        let ncells = (xs.len() - 1) * (ys.len() - 1) * (zs.len() - 1);
        HexMesh {
            xs,
            ys,
            zs,
            cells: vec![None; ncells],
            materials,
        }
    }

    /// Number of cells along x, y, z.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.xs.len() - 1, self.ys.len() - 1, self.zs.len() - 1)
    }

    /// Number of grid nodes.
    pub fn node_count(&self) -> usize {
        self.xs.len() * self.ys.len() * self.zs.len()
    }

    /// Number of cells (occupied or void).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of occupied (non-void) cells.
    pub fn occupied_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// Grid plane coordinates along x.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Grid plane coordinates along y.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Grid plane coordinates along z.
    pub fn zs(&self) -> &[f64] {
        &self.zs
    }

    /// The material catalog.
    pub fn materials(&self) -> &[Material] {
        &self.materials
    }

    /// Linear cell index for `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn cell_index(&self, i: usize, j: usize, k: usize) -> usize {
        let (nx, ny, nz) = self.dims();
        assert!(
            i < nx && j < ny && k < nz,
            "cell ({i},{j},{k}) out of range"
        );
        (k * ny + j) * nx + i
    }

    /// Cell grid coordinates for a linear index.
    pub fn cell_coords(&self, idx: usize) -> (usize, usize, usize) {
        let (nx, ny, _) = self.dims();
        let i = idx % nx;
        let j = (idx / nx) % ny;
        let k = idx / (nx * ny);
        (i, j, k)
    }

    /// Material index of a cell, `None` if void.
    pub fn cell_material(&self, idx: usize) -> Option<u8> {
        self.cells[idx]
    }

    /// Sets the material of cell `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range or the material index is not
    /// in the catalog.
    pub fn set_cell(&mut self, i: usize, j: usize, k: usize, material: Option<u8>) {
        if let Some(m) = material {
            assert!((m as usize) < self.materials.len(), "unknown material {m}");
        }
        let idx = self.cell_index(i, j, k);
        self.cells[idx] = material;
    }

    /// Fills every cell whose **center** satisfies `pred(x, y, z)` with the
    /// given material, overwriting previous assignments.
    pub fn fill_where<F: Fn(f64, f64, f64) -> bool>(&mut self, material: u8, pred: F) {
        assert!((material as usize) < self.materials.len());
        let (nx, ny, nz) = self.dims();
        for k in 0..nz {
            let zc = 0.5 * (self.zs[k] + self.zs[k + 1]);
            for j in 0..ny {
                let yc = 0.5 * (self.ys[j] + self.ys[j + 1]);
                for i in 0..nx {
                    let xc = 0.5 * (self.xs[i] + self.xs[i + 1]);
                    if pred(xc, yc, zc) {
                        let idx = (k * ny + j) * nx + i;
                        self.cells[idx] = Some(material);
                    }
                }
            }
        }
    }

    /// Linear node index for grid node `(i, j, k)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn node_index(&self, i: usize, j: usize, k: usize) -> usize {
        let (npx, npy, npz) = (self.xs.len(), self.ys.len(), self.zs.len());
        assert!(i < npx && j < npy && k < npz);
        (k * npy + j) * npx + i
    }

    /// Coordinates of grid node `(i, j, k)`.
    pub fn node_position(&self, i: usize, j: usize, k: usize) -> [f64; 3] {
        [self.xs[i], self.ys[j], self.zs[k]]
    }

    /// The 8 node indices of cell `(i, j, k)` in standard hex order
    /// (counter-clockwise bottom face, then top face).
    pub fn cell_nodes(&self, i: usize, j: usize, k: usize) -> [usize; 8] {
        [
            self.node_index(i, j, k),
            self.node_index(i + 1, j, k),
            self.node_index(i + 1, j + 1, k),
            self.node_index(i, j + 1, k),
            self.node_index(i, j, k + 1),
            self.node_index(i + 1, j, k + 1),
            self.node_index(i + 1, j + 1, k + 1),
            self.node_index(i, j + 1, k + 1),
        ]
    }

    /// The center of cell `(i, j, k)`.
    pub fn cell_center(&self, i: usize, j: usize, k: usize) -> [f64; 3] {
        [
            0.5 * (self.xs[i] + self.xs[i + 1]),
            0.5 * (self.ys[j] + self.ys[j + 1]),
            0.5 * (self.zs[k] + self.zs[k + 1]),
        ]
    }

    /// The (dx, dy, dz) extents of cell `(i, j, k)`.
    pub fn cell_size(&self, i: usize, j: usize, k: usize) -> [f64; 3] {
        [
            self.xs[i + 1] - self.xs[i],
            self.ys[j + 1] - self.ys[j],
            self.zs[k + 1] - self.zs[k],
        ]
    }

    /// Iterates over occupied cells as `(i, j, k, material_index)`.
    pub fn occupied_cells(&self) -> impl Iterator<Item = (usize, usize, usize, u8)> + '_ {
        let (nx, ny, _) = self.dims();
        self.cells.iter().enumerate().filter_map(move |(idx, m)| {
            m.map(|mat| {
                let i = idx % nx;
                let j = (idx / nx) % ny;
                let k = idx / (nx * ny);
                (i, j, k, mat)
            })
        })
    }

    /// Total volume of occupied cells.
    pub fn occupied_volume(&self) -> f64 {
        self.occupied_cells()
            .map(|(i, j, k, _)| {
                let s = self.cell_size(i, j, k);
                s[0] * s[1] * s[2]
            })
            .sum()
    }
}

/// Builds a sorted, deduplicated plane-coordinate array covering
/// `[breaks.min(), breaks.max()]` that contains every breakpoint and whose
/// intervals are no longer than `max_step`.
///
/// This is the voxelizer's workhorse: feature boundaries become exact mesh
/// planes, and large homogeneous regions get subdivided only as far as the
/// target resolution requires.
///
/// # Panics
///
/// Panics if fewer than two distinct breakpoints are supplied or
/// `max_step <= 0`.
pub fn graded_planes(breaks: &[f64], max_step: f64) -> Vec<f64> {
    assert!(max_step > 0.0, "max_step must be positive");
    let mut b: Vec<f64> = breaks.to_vec();
    b.sort_by(|x, y| x.partial_cmp(y).expect("finite breakpoints"));
    b.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    assert!(b.len() >= 2, "need at least two distinct breakpoints");
    let mut out = Vec::new();
    for w in b.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let n = ((hi - lo) / max_step).ceil().max(1.0) as usize;
        for s in 0..n {
            out.push(lo + (hi - lo) * s as f64 / n as f64);
        }
    }
    out.push(*b.last().expect("non-empty"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::{table1, MaterialKind};

    fn mats() -> Vec<Material> {
        vec![table1(MaterialKind::Copper), table1(MaterialKind::Ild)]
    }

    fn unit_mesh(n: usize) -> HexMesh {
        let planes: Vec<f64> = (0..=n).map(|i| i as f64 / n as f64).collect();
        HexMesh::new(planes.clone(), planes.clone(), planes, mats())
    }

    #[test]
    fn indexing_round_trips() {
        let m = unit_mesh(3);
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    let idx = m.cell_index(i, j, k);
                    assert_eq!(m.cell_coords(idx), (i, j, k));
                }
            }
        }
    }

    #[test]
    fn fill_where_assigns_by_center() {
        let mut m = unit_mesh(4);
        m.fill_where(0, |x, _, _| x < 0.5);
        // Cells with centers at x = 0.125, 0.375 qualify: half the cells.
        assert_eq!(m.occupied_count(), 2 * 4 * 4);
    }

    #[test]
    fn occupied_volume_sums_cell_volumes() {
        let mut m = unit_mesh(2);
        m.fill_where(1, |_, _, _| true);
        assert!((m.occupied_volume() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cell_nodes_are_distinct_and_ordered() {
        let m = unit_mesh(2);
        let nodes = m.cell_nodes(0, 0, 0);
        let mut sorted = nodes;
        sorted.sort_unstable();
        sorted.windows(2).for_each(|w| assert_ne!(w[0], w[1]));
        // Bottom-face nodes come before the matching top-face nodes.
        assert_eq!(nodes[4], nodes[0] + 9); // 3x3 nodes per z-plane
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_planes_rejected() {
        HexMesh::new(vec![0.0, 1.0, 0.5], vec![0.0, 1.0], vec![0.0, 1.0], mats());
    }

    #[test]
    fn graded_planes_contains_breaks_and_respects_step() {
        let p = graded_planes(&[0.0, 1.0, 0.25], 0.1);
        assert!(p.contains(&0.0));
        assert!(p.contains(&0.25));
        assert!(p.contains(&1.0));
        for w in p.windows(2) {
            assert!(w[1] - w[0] <= 0.1 + 1e-12);
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn graded_planes_dedups_close_breaks() {
        let p = graded_planes(&[0.0, 0.5, 0.5 + 1e-15, 1.0], 1.0);
        assert_eq!(p.len(), 3);
    }
}
