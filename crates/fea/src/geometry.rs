//! Geometry of Cu dual-damascene via-array characterization primitives.
//!
//! Builds voxel models of the paper's Figs. 2 and 5: a lower metal wire
//! (`Mx`, running along x), an upper wire (`Mx+1`, running along y), a
//! `rows × cols` via array at their intersection, Ta barrier liners, Si₃N₄
//! capping layers, SiCOH ILD, all on a silicon substrate. The three
//! intersection patterns of the paper's Fig. 4 (Plus / T / L) differ in
//! whether the wires continue past the intersection and in the boundary
//! conditions on the lateral faces.

use crate::assembly::{BoundaryConditions, FaceBc};
use crate::material::{table1, Material, MaterialKind};
use crate::mesh::{graded_planes, HexMesh};

/// Material indices used by the voxelizer, in [`stack_materials`] order.
pub mod mat_index {
    /// Silicon substrate.
    pub const SUBSTRATE: u8 = 0;
    /// Bulk copper.
    pub const COPPER: u8 = 1;
    /// SiCOH ILD.
    pub const ILD: u8 = 2;
    /// Ta barrier.
    pub const BARRIER: u8 = 3;
    /// Si₃N₄ capping.
    pub const CAPPING: u8 = 4;
}

/// The material catalog in voxel-index order (see [`mat_index`]).
pub fn stack_materials() -> Vec<Material> {
    vec![
        table1(MaterialKind::Substrate),
        table1(MaterialKind::Copper),
        table1(MaterialKind::Ild),
        table1(MaterialKind::Barrier),
        table1(MaterialKind::Capping),
    ]
}

/// Layer thicknesses of the Cu DD stack, in µm.
///
/// Defaults approximate upper thick-metal layers (M7/M8-like) of a 32 nm
/// node, with a thin substrate slab standing in for the full wafer (the
/// fixed bottom face supplies the wafer's rigidity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CuDdStack {
    /// Silicon substrate slab.
    pub substrate: f64,
    /// ILD below the lower metal.
    pub ild_under: f64,
    /// Lower metal (`Mx`) thickness.
    pub metal_lower: f64,
    /// Si₃N₄ cap above the lower metal.
    pub cap_lower: f64,
    /// Via level height.
    pub via_height: f64,
    /// Upper metal (`Mx+1`) thickness.
    pub metal_upper: f64,
    /// Si₃N₄ cap above the upper metal.
    pub cap_upper: f64,
    /// ILD overburden above the top cap.
    pub overburden: f64,
    /// Ta barrier liner thickness.
    pub barrier: f64,
}

impl Default for CuDdStack {
    fn default() -> Self {
        CuDdStack {
            substrate: 0.4,
            ild_under: 0.3,
            metal_lower: 0.3,
            cap_lower: 0.05,
            via_height: 0.25,
            metal_upper: 0.35,
            cap_upper: 0.05,
            overburden: 0.15,
            barrier: 0.05,
        }
    }
}

impl CuDdStack {
    /// Cumulative z levels:
    /// `[0, sub, ild, mx, cap, via, mx1, cap, top]` (9 entries).
    pub fn z_levels(&self) -> [f64; 9] {
        let mut z = [0.0; 9];
        z[1] = z[0] + self.substrate;
        z[2] = z[1] + self.ild_under;
        z[3] = z[2] + self.metal_lower;
        z[4] = z[3] + self.cap_lower;
        z[5] = z[4] + self.via_height;
        z[6] = z[5] + self.metal_upper;
        z[7] = z[6] + self.cap_upper;
        z[8] = z[7] + self.overburden;
        z
    }

    /// Total stack height.
    pub fn height(&self) -> f64 {
        self.z_levels()[8]
    }
}

/// A `rows × cols` array of square vias.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViaArrayGeometry {
    /// Rows of the array (along y).
    pub rows: usize,
    /// Columns of the array (along x).
    pub cols: usize,
    /// Side of each square via, µm.
    pub via_width: f64,
    /// Center-to-center pitch, µm.
    pub pitch: f64,
}

impl ViaArrayGeometry {
    /// A square `n × n` array.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `via_width <= 0`, or `pitch < via_width` for
    /// `n > 1`.
    pub fn square(n: usize, via_width: f64, pitch: f64) -> Self {
        assert!(n > 0, "array needs at least one via");
        assert!(via_width > 0.0, "via width must be positive");
        assert!(
            n == 1 || pitch >= via_width,
            "pitch {pitch} smaller than via width {via_width}"
        );
        ViaArrayGeometry {
            rows: n,
            cols: n,
            via_width,
            pitch,
        }
    }

    /// The paper's single 1×1 via: one 1 µm × 1 µm via (1 µm² area).
    pub fn paper_1x1() -> Self {
        ViaArrayGeometry::square(1, 1.0, 1.0)
    }

    /// The paper's 4×4 array: sixteen 0.25 µm vias (1 µm² total area).
    pub fn paper_4x4() -> Self {
        ViaArrayGeometry::square(4, 0.25, 0.5)
    }

    /// The paper's 8×8 array: sixty-four 0.125 µm vias (1 µm² total area).
    pub fn paper_8x8() -> Self {
        ViaArrayGeometry::square(8, 0.125, 0.25)
    }

    /// Total via count.
    pub fn count(&self) -> usize {
        self.rows * self.cols
    }

    /// Total conducting cross-section, µm² (the paper holds this at 1 µm²
    /// across configurations so they have equal nominal resistance).
    pub fn effective_area(&self) -> f64 {
        self.count() as f64 * self.via_width * self.via_width
    }

    /// Array extent along x (columns direction), µm.
    pub fn span_x(&self) -> f64 {
        (self.cols as f64 - 1.0) * self.pitch + self.via_width
    }

    /// Array extent along y (rows direction), µm.
    pub fn span_y(&self) -> f64 {
        (self.rows as f64 - 1.0) * self.pitch + self.via_width
    }

    /// Via centers (row-major) for an array centered at `(cx, cy)`.
    pub fn via_centers(&self, cx: f64, cy: f64) -> Vec<(f64, f64)> {
        let x0 = cx - (self.cols as f64 - 1.0) * self.pitch / 2.0;
        let y0 = cy - (self.rows as f64 - 1.0) * self.pitch / 2.0;
        let mut centers = Vec::with_capacity(self.count());
        for r in 0..self.rows {
            for c in 0..self.cols {
                centers.push((x0 + c as f64 * self.pitch, y0 + r as f64 * self.pitch));
            }
        }
        centers
    }

    /// Classifies a via (by row-major index) as on the array perimeter or in
    /// the interior — interior vias see the reduced thermomechanical stress
    /// highlighted by the paper's Fig. 1.
    pub fn is_perimeter(&self, index: usize) -> bool {
        let r = index / self.cols;
        let c = index % self.cols;
        r == 0 || r == self.rows - 1 || c == 0 || c == self.cols - 1
    }
}

/// The three intersection patterns of the paper's Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntersectionPattern {
    /// Inside the mesh: both wires continue in all four directions.
    Plus,
    /// At a mesh edge: the upper wire terminates at the intersection.
    Tee,
    /// At a mesh corner: both wires terminate at the intersection.
    Ell,
}

impl IntersectionPattern {
    /// All patterns, in the paper's presentation order.
    pub const ALL: [IntersectionPattern; 3] = [
        IntersectionPattern::Plus,
        IntersectionPattern::Tee,
        IntersectionPattern::Ell,
    ];
}

impl std::fmt::Display for IntersectionPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IntersectionPattern::Plus => "plus",
            IntersectionPattern::Tee => "tee",
            IntersectionPattern::Ell => "ell",
        };
        f.write_str(s)
    }
}

/// A complete via-array characterization primitive (paper §3.2): geometry,
/// mesh resolution and thermal excursion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacterizationModel {
    /// Intersection pattern.
    pub pattern: IntersectionPattern,
    /// Via array configuration.
    pub array: ViaArrayGeometry,
    /// Wire width, µm (the paper uses 2 µm power-grid wires).
    pub wire_width: f64,
    /// ILD margin beyond the wires to the domain boundary, µm.
    pub margin: f64,
    /// Target voxel size, µm. Feature boundaries are always resolved
    /// exactly; this bounds the mesh step inside homogeneous regions.
    pub resolution: f64,
    /// Layer stack.
    pub stack: CuDdStack,
    /// Anneal (stress-free) temperature, °C.
    pub anneal_temperature: f64,
    /// Operating temperature, °C.
    pub operating_temperature: f64,
}

impl Default for CharacterizationModel {
    fn default() -> Self {
        CharacterizationModel {
            pattern: IntersectionPattern::Plus,
            array: ViaArrayGeometry::paper_4x4(),
            wire_width: 2.0,
            margin: 1.0,
            resolution: 0.25,
            stack: CuDdStack::default(),
            anneal_temperature: 325.0,
            operating_temperature: 105.0,
        }
    }
}

/// Extent of a wire along its run direction given the pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WireRun {
    /// Start coordinate along the run axis.
    start: f64,
    /// End coordinate along the run axis.
    end: f64,
}

impl CharacterizationModel {
    /// The uniform temperature change applied to the stress-free state, K.
    pub fn delta_t(&self) -> f64 {
        self.operating_temperature - self.anneal_temperature
    }

    /// Lateral domain size `(Lx, Ly)`, µm.
    pub fn domain(&self) -> (f64, f64) {
        let l = self.wire_width + 2.0 * self.margin;
        let need = self.array.span_x().max(self.array.span_y()) + 2.0 * self.margin;
        let side = l.max(need);
        (side, side)
    }

    /// Center of the intersection.
    pub fn center(&self) -> (f64, f64) {
        let (lx, ly) = self.domain();
        (lx / 2.0, ly / 2.0)
    }

    /// How far past the intersection a terminating wire extends, µm.
    fn termination_overhang(&self) -> f64 {
        0.5 * self.wire_width.min(1.0)
    }

    /// Lower wire (`Mx`) run along x.
    fn lower_run(&self) -> WireRun {
        let (lx, _) = self.domain();
        let (cx, _) = self.center();
        match self.pattern {
            IntersectionPattern::Plus | IntersectionPattern::Tee => WireRun {
                start: 0.0,
                end: lx,
            },
            IntersectionPattern::Ell => WireRun {
                start: 0.0,
                end: cx + self.array.span_x() / 2.0 + self.termination_overhang(),
            },
        }
    }

    /// Upper wire (`Mx+1`) run along y.
    fn upper_run(&self) -> WireRun {
        let (_, ly) = self.domain();
        let (_, cy) = self.center();
        match self.pattern {
            IntersectionPattern::Plus => WireRun {
                start: 0.0,
                end: ly,
            },
            IntersectionPattern::Tee | IntersectionPattern::Ell => WireRun {
                start: 0.0,
                end: cy + self.array.span_y() / 2.0 + self.termination_overhang(),
            },
        }
    }

    /// Boundary conditions matching the pattern: faces that a wire runs
    /// through behave as continuation (sliding) planes; faces that only see
    /// ILD beyond a terminated wire are free, giving the extra compliance
    /// that lowers T- and L-pattern stress (paper §3.2).
    pub fn boundary_conditions(&self) -> BoundaryConditions {
        let mut bc = BoundaryConditions::confined_stack();
        match self.pattern {
            IntersectionPattern::Plus => {}
            IntersectionPattern::Tee => {
                bc.y_max = FaceBc::Free;
            }
            IntersectionPattern::Ell => {
                bc.x_max = FaceBc::Free;
                bc.y_max = FaceBc::Free;
            }
        }
        bc
    }

    /// Voxelizes the primitive into a hexahedral mesh.
    ///
    /// # Panics
    ///
    /// Panics if the array does not fit in the wire width, or the resolution
    /// is non-positive.
    pub fn build_mesh(&self) -> HexMesh {
        assert!(self.resolution > 0.0, "resolution must be positive");
        assert!(
            self.array.span_x() <= self.wire_width.max(self.array.span_x())
                && self.array.span_y() <= self.wire_width + 1e-9,
            "via array ({} µm) must fit in the wire width ({} µm)",
            self.array.span_y(),
            self.wire_width
        );
        let (lx, ly) = self.domain();
        let (cx, cy) = self.center();
        let z = self.stack.z_levels();
        let bar = self.stack.barrier;

        // Plane breakpoints: domain edges, wire edges (± barrier), via edges
        // (± barrier), wire termination ends (± barrier).
        let mut xb = vec![0.0, lx];
        let mut yb = vec![0.0, ly];
        let lower = self.lower_run();
        let upper = self.upper_run();
        // Lower wire edges are y planes; upper wire edges are x planes.
        for s in [-0.5 * self.wire_width, 0.5 * self.wire_width] {
            for inset in [0.0, bar] {
                yb.push(cy + s + if s < 0.0 { inset } else { -inset });
                xb.push(cx + s + if s < 0.0 { inset } else { -inset });
            }
        }
        for run_end in [lower.end, lower.start] {
            if run_end > 0.0 && run_end < lx {
                xb.push(run_end);
                xb.push(run_end - bar);
            }
        }
        for run_end in [upper.end, upper.start] {
            if run_end > 0.0 && run_end < ly {
                yb.push(run_end);
                yb.push(run_end - bar);
            }
        }
        for (vx, vy) in self.array.via_centers(cx, cy) {
            let h = self.via_width_half();
            for s in [-h, h] {
                xb.push(vx + s);
                yb.push(vy + s);
                xb.push(vx + s + if s < 0.0 { bar } else { -bar });
                yb.push(vy + s + if s < 0.0 { bar } else { -bar });
            }
        }
        let xb: Vec<f64> = xb.into_iter().filter(|v| (0.0..=lx).contains(v)).collect();
        let yb: Vec<f64> = yb.into_iter().filter(|v| (0.0..=ly).contains(v)).collect();
        let xs = graded_planes(&xb, self.resolution);
        let ys = graded_planes(&yb, self.resolution);
        // z: all band boundaries plus barrier offsets inside metal bands,
        // subdivided to ~resolution (bands are thin already).
        let mut zb: Vec<f64> = z.to_vec();
        zb.push(z[2] + bar); // lower wire bottom barrier
        zb.push(z[5] + bar); // upper wire bottom barrier
        let zs = graded_planes(&zb, self.resolution.max(0.1));

        let mut mesh = HexMesh::new(xs, ys, zs, stack_materials());
        let model = *self;
        mesh.fill_where(mat_index::ILD, |_, _, _| true);
        // Classify every voxel center; precedence handled by classify().
        let (nx, ny, nz) = mesh.dims();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = mesh.cell_center(i, j, k);
                    let m = model.classify(c[0], c[1], c[2]);
                    mesh.set_cell(i, j, k, Some(m));
                }
            }
        }
        mesh
    }

    fn via_width_half(&self) -> f64 {
        self.array.via_width / 2.0
    }

    /// Material at a point (voxel-center classification).
    fn classify(&self, x: f64, y: f64, z: f64) -> u8 {
        let zl = self.stack.z_levels();
        let bar = self.stack.barrier;
        let (cx, cy) = self.center();
        let wh = self.wire_width / 2.0;
        let lower = self.lower_run();
        let upper = self.upper_run();

        let in_lower_wire = (y - cy).abs() < wh && x > lower.start && x < lower.end;
        let in_lower_core = (y - cy).abs() < wh - bar
            && x > lower.start + if lower.start > 0.0 { bar } else { 0.0 }
            && x < lower.end
                - if lower.end < self.domain().0 {
                    bar
                } else {
                    0.0
                };
        let in_upper_wire = (x - cx).abs() < wh && y > upper.start && y < upper.end;
        let in_upper_core = (x - cx).abs() < wh - bar
            && y > upper.start + if upper.start > 0.0 { bar } else { 0.0 }
            && y < upper.end
                - if upper.end < self.domain().1 {
                    bar
                } else {
                    0.0
                };

        let h = self.via_width_half();
        let mut in_via = false;
        let mut in_via_core = false;
        for (vx, vy) in self.array.via_centers(cx, cy) {
            let dx = (x - vx).abs();
            let dy = (y - vy).abs();
            if dx < h && dy < h {
                in_via = true;
                if dx < h - bar && dy < h - bar {
                    in_via_core = true;
                }
                break;
            }
        }

        if z < zl[1] {
            mat_index::SUBSTRATE
        } else if z < zl[2] {
            mat_index::ILD
        } else if z < zl[3] {
            // Lower metal band. Barrier at trench bottom and walls.
            if in_lower_wire {
                if z < zl[2] + bar || !in_lower_core {
                    mat_index::BARRIER
                } else {
                    mat_index::COPPER
                }
            } else {
                mat_index::ILD
            }
        } else if z < zl[4] {
            // Lower cap band: vias punch through; cap blankets elsewhere.
            if in_via {
                if in_via_core {
                    mat_index::COPPER
                } else {
                    mat_index::BARRIER
                }
            } else {
                mat_index::CAPPING
            }
        } else if z < zl[5] {
            // Via band.
            if in_via {
                if in_via_core {
                    mat_index::COPPER
                } else {
                    mat_index::BARRIER
                }
            } else {
                mat_index::ILD
            }
        } else if z < zl[6] {
            // Upper metal band: barrier at walls; at the trench bottom the
            // barrier is present except where a via lands.
            if in_upper_wire {
                if !in_upper_core || (z < zl[5] + bar && !in_via) {
                    mat_index::BARRIER
                } else {
                    mat_index::COPPER
                }
            } else {
                mat_index::ILD
            }
        } else if z < zl[7] {
            mat_index::CAPPING
        } else {
            mat_index::ILD
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arrays_have_unit_effective_area() {
        for a in [
            ViaArrayGeometry::paper_1x1(),
            ViaArrayGeometry::paper_4x4(),
            ViaArrayGeometry::paper_8x8(),
        ] {
            assert!((a.effective_area() - 1.0).abs() < 1e-12, "{a:?}");
        }
    }

    #[test]
    fn paper_arrays_fit_in_2um_wire() {
        assert!(ViaArrayGeometry::paper_4x4().span_x() <= 2.0);
        assert!(ViaArrayGeometry::paper_8x8().span_x() <= 2.0);
    }

    #[test]
    fn perimeter_classification_4x4() {
        let a = ViaArrayGeometry::paper_4x4();
        let perimeter = (0..16).filter(|&i| a.is_perimeter(i)).count();
        assert_eq!(perimeter, 12); // 16 - 4 interior
        assert!(!a.is_perimeter(5));
        assert!(!a.is_perimeter(10));
        assert!(a.is_perimeter(0));
        assert!(a.is_perimeter(15));
    }

    #[test]
    fn via_centers_are_centered_and_ordered() {
        let a = ViaArrayGeometry::square(2, 0.2, 0.6);
        let c = a.via_centers(1.0, 2.0);
        assert_eq!(c.len(), 4);
        assert!((c[0].0 - 0.7).abs() < 1e-12 && (c[0].1 - 1.7).abs() < 1e-12);
        assert!((c[3].0 - 1.3).abs() < 1e-12 && (c[3].1 - 2.3).abs() < 1e-12);
        let mean_x: f64 = c.iter().map(|p| p.0).sum::<f64>() / 4.0;
        assert!((mean_x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_levels_are_increasing() {
        let z = CuDdStack::default().z_levels();
        for w in z.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn boundary_conditions_match_patterns() {
        let mut m = CharacterizationModel {
            pattern: IntersectionPattern::Plus,
            ..CharacterizationModel::default()
        };
        assert_eq!(m.boundary_conditions().y_max, FaceBc::Sliding);
        m.pattern = IntersectionPattern::Tee;
        assert_eq!(m.boundary_conditions().y_max, FaceBc::Free);
        assert_eq!(m.boundary_conditions().x_max, FaceBc::Sliding);
        m.pattern = IntersectionPattern::Ell;
        assert_eq!(m.boundary_conditions().x_max, FaceBc::Free);
        assert_eq!(m.boundary_conditions().y_max, FaceBc::Free);
        // Bottom is always fixed.
        assert_eq!(m.boundary_conditions().z_min, FaceBc::Fixed);
    }

    #[test]
    fn mesh_contains_all_five_materials() {
        let model = CharacterizationModel {
            array: ViaArrayGeometry::square(2, 0.5, 1.0),
            resolution: 0.25,
            ..CharacterizationModel::default()
        };
        let mesh = model.build_mesh();
        let mut seen = [false; 5];
        for (_, _, _, m) in mesh.occupied_cells() {
            seen[m as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "materials seen: {seen:?}");
    }

    #[test]
    fn copper_volume_reflects_array_presence() {
        // A mesh with vias has more copper than the same mesh without.
        let base = CharacterizationModel {
            array: ViaArrayGeometry::square(2, 0.5, 1.0),
            resolution: 0.25,
            ..CharacterizationModel::default()
        };
        let tiny = CharacterizationModel {
            array: ViaArrayGeometry::square(1, 0.25, 0.25),
            ..base
        };
        let vol = |m: &CharacterizationModel| {
            let mesh = m.build_mesh();
            mesh.occupied_cells()
                .filter(|&(_, _, _, mat)| mat == mat_index::COPPER)
                .map(|(i, j, k, _)| {
                    let s = mesh.cell_size(i, j, k);
                    s[0] * s[1] * s[2]
                })
                .sum::<f64>()
        };
        assert!(vol(&base) > vol(&tiny));
    }

    #[test]
    fn ell_pattern_has_less_copper_than_plus() {
        // Terminated wires mean less copper in the L pattern.
        let mk = |pattern| CharacterizationModel {
            pattern,
            array: ViaArrayGeometry::square(2, 0.5, 1.0),
            resolution: 0.25,
            ..CharacterizationModel::default()
        };
        let cu_vol = |model: CharacterizationModel| {
            let mesh = model.build_mesh();
            mesh.occupied_cells()
                .filter(|&(_, _, _, m)| m == mat_index::COPPER)
                .count()
        };
        assert!(cu_vol(mk(IntersectionPattern::Ell)) < cu_vol(mk(IntersectionPattern::Plus)));
    }

    #[test]
    fn delta_t_is_negative_on_cooldown() {
        let m = CharacterizationModel::default();
        assert_eq!(m.delta_t(), -220.0);
    }
}
