//! Legacy-VTK export of stress fields for external visualization
//! (ParaView, VisIt).
//!
//! The export writes the occupied cells as an unstructured hexahedral grid
//! with per-cell material IDs, hydrostatic stress and von Mises stress —
//! the views used to produce figures like the paper's Fig. 1 stress maps.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::element::{hydrostatic, von_mises};
use crate::stress::StressField;

/// Renders a stress field as a legacy-format VTK (`.vtk`) string.
///
/// Only occupied cells are exported; nodes are renumbered compactly.
pub fn to_vtk(field: &StressField) -> String {
    let mesh = field.mesh();
    // Compact node numbering over occupied cells.
    let mut node_map: HashMap<usize, usize> = HashMap::new();
    let mut points: Vec<[f64; 3]> = Vec::new();
    let mut cells: Vec<[usize; 8]> = Vec::new();
    let mut hydro: Vec<f64> = Vec::new();
    let mut mises: Vec<f64> = Vec::new();
    let mut material: Vec<u8> = Vec::new();

    let (npx, npy, _) = (mesh.xs().len(), mesh.ys().len(), mesh.zs().len());
    for (i, j, k, mat) in mesh.occupied_cells() {
        let nodes = mesh.cell_nodes(i, j, k);
        let mut mapped = [0usize; 8];
        for (slot, &n) in nodes.iter().enumerate() {
            let next = points.len();
            let id = *node_map.entry(n).or_insert_with(|| {
                let kk = n / (npx * npy);
                let jj = (n / npx) % npy;
                let ii = n % npx;
                points.push(mesh.node_position(ii, jj, kk));
                next
            });
            mapped[slot] = id;
        }
        cells.push(mapped);
        let sigma = field
            .cell_stress(i, j, k)
            .expect("occupied cells have stress");
        hydro.push(hydrostatic(&sigma) / 1e6);
        mises.push(von_mises(&sigma) / 1e6);
        material.push(mat);
    }

    let mut out = String::new();
    out.push_str("# vtk DataFile Version 3.0\n");
    out.push_str("emgrid thermomechanical stress field\n");
    out.push_str("ASCII\nDATASET UNSTRUCTURED_GRID\n");
    let _ = writeln!(out, "POINTS {} double", points.len());
    for p in &points {
        let _ = writeln!(out, "{} {} {}", p[0], p[1], p[2]);
    }
    let _ = writeln!(out, "CELLS {} {}", cells.len(), cells.len() * 9);
    for c in &cells {
        let _ = writeln!(
            out,
            "8 {} {} {} {} {} {} {} {}",
            c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]
        );
    }
    let _ = writeln!(out, "CELL_TYPES {}", cells.len());
    for _ in &cells {
        out.push_str("12\n"); // VTK_HEXAHEDRON
    }
    let _ = writeln!(out, "CELL_DATA {}", cells.len());
    out.push_str("SCALARS hydrostatic_mpa double 1\nLOOKUP_TABLE default\n");
    for v in &hydro {
        let _ = writeln!(out, "{v}");
    }
    out.push_str("SCALARS von_mises_mpa double 1\nLOOKUP_TABLE default\n");
    for v in &mises {
        let _ = writeln!(out, "{v}");
    }
    out.push_str("SCALARS material int 1\nLOOKUP_TABLE default\n");
    for m in &material {
        let _ = writeln!(out, "{m}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{CharacterizationModel, ViaArrayGeometry};
    use crate::model::ThermalStressAnalysis;

    fn small_field() -> StressField {
        let model = CharacterizationModel {
            array: ViaArrayGeometry::square(1, 0.5, 0.5),
            wire_width: 1.5,
            margin: 0.5,
            resolution: 0.5,
            ..CharacterizationModel::default()
        };
        ThermalStressAnalysis::new(model).run().unwrap()
    }

    #[test]
    fn vtk_structure_is_consistent() {
        let field = small_field();
        let vtk = to_vtk(&field);
        assert!(vtk.starts_with("# vtk DataFile Version 3.0"));
        let cells = field.mesh().occupied_count();
        assert!(vtk.contains(&format!("CELLS {cells} {}", cells * 9)));
        assert!(vtk.contains(&format!("CELL_DATA {cells}")));
        assert!(vtk.contains("SCALARS hydrostatic_mpa double 1"));
        // Every exported cell type is a hexahedron.
        let hex_lines = vtk.lines().filter(|l| *l == "12").count();
        assert_eq!(hex_lines, cells);
    }

    #[test]
    fn point_count_matches_header() {
        let field = small_field();
        let vtk = to_vtk(&field);
        let header_count: usize = vtk
            .lines()
            .find(|l| l.starts_with("POINTS"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .expect("POINTS header");
        let points_start = vtk
            .lines()
            .position(|l| l.starts_with("POINTS"))
            .expect("POINTS header present");
        let coord_lines = vtk
            .lines()
            .skip(points_start + 1)
            .take_while(|l| !l.starts_with("CELLS"))
            .count();
        assert_eq!(header_count, coord_lines);
    }
}
