//! Kolmogorov–Smirnov distances.
//!
//! Used to quantify how well a fitted two-parameter lognormal represents a
//! via-array TTF sample before it is handed to the power-grid Monte Carlo
//! (the paper fits such a lognormal at the end of §5.1).

use crate::ecdf::Ecdf;

/// One-sample KS statistic: `sup_x |F_n(x) − F(x)|` for a sample ECDF and a
/// reference CDF.
///
/// The supremum over a step function is attained at sample points, comparing
/// against both the left and right limits of the empirical CDF.
///
/// # Example
///
/// ```
/// use emgrid_stats::{Ecdf, ks_statistic};
///
/// let e = Ecdf::new(vec![0.1, 0.35, 0.62, 0.81]);
/// let d = ks_statistic(&e, |x| x.clamp(0.0, 1.0)); // vs Uniform(0,1)
/// assert!(d < 0.25);
/// ```
pub fn ks_statistic<F: Fn(f64) -> f64>(sample: &Ecdf, cdf: F) -> f64 {
    let n = sample.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sample.samples().iter().enumerate() {
        let f = cdf(x);
        let upper = (i as f64 + 1.0) / n - f;
        let lower = f - i as f64 / n;
        d = d.max(upper.abs()).max(lower.abs());
    }
    d
}

/// Two-sample KS statistic: `sup_x |F_n(x) − G_m(x)|`.
pub fn ks_two_sample(a: &Ecdf, b: &Ecdf) -> f64 {
    let mut d: f64 = 0.0;
    for &x in a.samples() {
        d = d.max((a.cdf(x) - b.cdf(x)).abs());
    }
    for &x in b.samples() {
        d = d.max((a.cdf(x) - b.cdf(x)).abs());
    }
    d
}

/// Critical KS value at significance `alpha` for sample size `n`
/// (asymptotic formula `c(alpha) / sqrt(n)`).
///
/// # Panics
///
/// Panics unless `alpha` is one of 0.10, 0.05, 0.01.
pub fn ks_critical_value(n: usize, alpha: f64) -> f64 {
    let c = if (alpha - 0.10).abs() < 1e-12 {
        1.224
    } else if (alpha - 0.05).abs() < 1e-12 {
        1.358
    } else if (alpha - 0.01).abs() < 1e-12 {
        1.628
    } else {
        panic!("unsupported alpha {alpha}; use 0.10, 0.05 or 0.01");
    };
    c / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lognormal::LogNormal;
    use crate::seeded_rng;

    #[test]
    fn perfect_fit_has_small_statistic() {
        let d = LogNormal::new(1.0, 0.4).unwrap();
        let mut rng = seeded_rng(3);
        let samples: Vec<f64> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        let e = Ecdf::new(samples);
        let ks = ks_statistic(&e, |x| d.cdf(x));
        assert!(ks < ks_critical_value(5000, 0.01), "ks = {ks}");
    }

    #[test]
    fn wrong_distribution_is_detected() {
        let d = LogNormal::new(1.0, 0.4).unwrap();
        let wrong = LogNormal::new(2.0, 0.4).unwrap();
        let mut rng = seeded_rng(3);
        let samples: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        let e = Ecdf::new(samples);
        let ks = ks_statistic(&e, |x| wrong.cdf(x));
        assert!(ks > ks_critical_value(2000, 0.01) * 5.0, "ks = {ks}");
    }

    #[test]
    fn two_sample_identical_is_zero() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(ks_two_sample(&e, &e), 0.0);
    }

    #[test]
    fn two_sample_disjoint_is_one() {
        let a = Ecdf::new(vec![1.0, 2.0]);
        let b = Ecdf::new(vec![10.0, 20.0]);
        assert_eq!(ks_two_sample(&a, &b), 1.0);
    }

    #[test]
    fn critical_value_shrinks_with_n() {
        assert!(ks_critical_value(100, 0.05) > ks_critical_value(10_000, 0.05));
    }

    #[test]
    #[should_panic(expected = "unsupported alpha")]
    fn unsupported_alpha_panics() {
        ks_critical_value(10, 0.2);
    }
}
