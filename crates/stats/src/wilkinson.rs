//! Fenton–Wilkinson approximation of sums of lognormals.
//!
//! The paper argues (§2.1) that because both `σ_C` and `D_eff` are
//! lognormal, the TTF "can be well approximated as a lognormal using
//! Wilkinson's approximation". The Fenton–Wilkinson method matches the first
//! two moments of a sum of independent lognormals with a single lognormal;
//! together with the exact closure of lognormals under products and powers
//! (see [`crate::LogNormal::scaled`] and [`crate::LogNormal::powered`]) this
//! gives the machinery for that argument and for compactly representing the
//! `(σ_C − σ_T)` margin distribution.

use crate::lognormal::LogNormal;
use crate::InvalidParameterError;

/// Approximates the distribution of `Σ X_i` for independent lognormal `X_i`
/// by a lognormal with the same mean and variance (Fenton–Wilkinson).
///
/// # Errors
///
/// Returns [`InvalidParameterError`] if `terms` is empty.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), emgrid_stats::InvalidParameterError> {
/// use emgrid_stats::{LogNormal, wilkinson::sum_of_lognormals};
///
/// let x = LogNormal::new(0.0, 0.25)?;
/// let sum = sum_of_lognormals(&[x, x, x, x])?;
/// assert!((sum.mean() - 4.0 * x.mean()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn sum_of_lognormals(terms: &[LogNormal]) -> Result<LogNormal, InvalidParameterError> {
    if terms.is_empty() {
        return Err(InvalidParameterError {
            parameter: "terms.len",
            value: 0.0,
        });
    }
    let mean: f64 = terms.iter().map(|t| t.mean()).sum();
    let variance: f64 = terms.iter().map(|t| t.variance()).sum();
    LogNormal::from_mean_sd(mean, variance.sqrt())
}

/// Approximates `a·X + b·Y` for independent lognormal `X`, `Y` and positive
/// weights by a lognormal (weighted Fenton–Wilkinson).
///
/// # Errors
///
/// Returns [`InvalidParameterError`] if a weight is non-positive.
pub fn weighted_sum(
    x: &LogNormal,
    a: f64,
    y: &LogNormal,
    b: f64,
) -> Result<LogNormal, InvalidParameterError> {
    let xs = x.scaled(a)?;
    let ys = y.scaled(b)?;
    sum_of_lognormals(&[xs, ys])
}

/// Approximates the distribution of the shifted variable `X − c` (for
/// `c < median(X)`) by a lognormal matching the mean and variance of the
/// truncated-to-positive shift.
///
/// This models the `(σ_C − σ_T)` effective critical stress: `σ_C` is
/// lognormal, `σ_T` is a deterministic precharacterized stress, and only the
/// positive part matters (non-positive margin means immediate nucleation
/// feasibility, handled separately by the EM layer).
///
/// # Errors
///
/// Returns [`InvalidParameterError`] if the shifted mean is non-positive
/// (i.e. `c` exceeds the mean of `X`).
pub fn shifted_lognormal(x: &LogNormal, c: f64) -> Result<LogNormal, InvalidParameterError> {
    let mean = x.mean() - c;
    if mean <= 0.0 {
        return Err(InvalidParameterError {
            parameter: "shifted mean",
            value: mean,
        });
    }
    LogNormal::from_mean_sd(mean, x.sd())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecdf::Ecdf;
    use crate::ks::ks_statistic;
    use crate::seeded_rng;

    #[test]
    fn sum_matches_moments_exactly() {
        let a = LogNormal::new(0.5, 0.3).unwrap();
        let b = LogNormal::new(-0.2, 0.6).unwrap();
        let s = sum_of_lognormals(&[a, b]).unwrap();
        assert!((s.mean() - (a.mean() + b.mean())).abs() < 1e-10);
        assert!((s.variance() - (a.variance() + b.variance())).abs() < 1e-9);
    }

    #[test]
    fn empty_sum_rejected() {
        assert!(sum_of_lognormals(&[]).is_err());
    }

    #[test]
    fn wilkinson_is_close_in_distribution_for_moderate_sigma() {
        // Monte-Carlo check: the FW lognormal should be KS-close to the true
        // sum for small/moderate sigma (the regime of the paper's TTFs).
        let x = LogNormal::new(1.0, 0.25).unwrap();
        let approx = sum_of_lognormals(&[x; 8]).unwrap();
        let mut rng = seeded_rng(5);
        let sums: Vec<f64> = (0..4000)
            .map(|_| (0..8).map(|_| x.sample(&mut rng)).sum())
            .collect();
        let ecdf = Ecdf::new(sums);
        let d = ks_statistic(&ecdf, |v| approx.cdf(v));
        assert!(d < 0.03, "KS distance {d}");
    }

    #[test]
    fn weighted_sum_scales_means() {
        let x = LogNormal::new(0.0, 0.2).unwrap();
        let y = LogNormal::new(0.0, 0.2).unwrap();
        let s = weighted_sum(&x, 2.0, &y, 3.0).unwrap();
        assert!((s.mean() - 5.0 * x.mean()).abs() < 1e-10);
        assert!(weighted_sum(&x, 0.0, &y, 1.0).is_err());
    }

    #[test]
    fn shift_preserves_sd_and_rejects_large_shift() {
        let x = LogNormal::from_mean_sd(340.0, 6.0).unwrap(); // σ_C in MPa
        let margin = shifted_lognormal(&x, 240.0).unwrap(); // σ_T = 240 MPa
        assert!((margin.mean() - 100.0).abs() < 1e-9);
        assert!((margin.sd() - 6.0).abs() < 1e-9);
        assert!(shifted_lognormal(&x, 400.0).is_err());
    }
}
