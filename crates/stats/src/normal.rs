//! The normal (Gaussian) distribution.

use crate::rng::Rng;
use crate::special::{inverse_normal_cdf, normal_cdf, normal_pdf};
use crate::InvalidParameterError;

/// A normal distribution `N(mean, sd²)`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), emgrid_stats::InvalidParameterError> {
/// use emgrid_stats::Normal;
///
/// let n = Normal::new(10.0, 2.0)?;
/// assert!((n.cdf(10.0) - 0.5).abs() < 1e-12);
/// assert!((n.quantile(n.cdf(13.0)) - 13.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if `sd <= 0` or either parameter is
    /// not finite.
    pub fn new(mean: f64, sd: f64) -> Result<Self, InvalidParameterError> {
        if !mean.is_finite() {
            return Err(InvalidParameterError {
                parameter: "mean",
                value: mean,
            });
        }
        if !(sd > 0.0 && sd.is_finite()) {
            return Err(InvalidParameterError {
                parameter: "sd",
                value: sd,
            });
        }
        Ok(Normal { mean, sd })
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        normal_pdf((x - self.mean) / self.sd) / self.sd
    }

    /// Cumulative probability at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        normal_cdf((x - self.mean) / self.sd)
    }

    /// Quantile (inverse CDF) at probability `p`.
    ///
    /// Returns infinities for `p` outside `(0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.mean + self.sd * inverse_normal_cdf(p)
    }

    /// Draws one sample by inverse-CDF transform (one uniform per draw).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * rng.next_standard_normal()
    }

    /// Fits a normal distribution to samples by moments.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if fewer than two samples are given
    /// or the sample variance is zero.
    pub fn fit(samples: &[f64]) -> Result<Self, InvalidParameterError> {
        if samples.len() < 2 {
            return Err(InvalidParameterError {
                parameter: "samples.len",
                value: samples.len() as f64,
            });
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
        Normal::new(mean, var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn standard_normal_moments_from_samples() {
        let n = Normal::new(0.0, 1.0).unwrap();
        let mut rng = seeded_rng(1);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let fit = Normal::fit(&samples).unwrap();
        assert!(fit.mean().abs() < 0.03, "mean {}", fit.mean());
        assert!((fit.sd() - 1.0).abs() < 0.03, "sd {}", fit.sd());
    }

    #[test]
    fn fit_requires_two_samples() {
        assert!(Normal::fit(&[1.0]).is_err());
        assert!(Normal::fit(&[]).is_err());
    }

    #[test]
    fn pdf_peaks_at_mean() {
        let n = Normal::new(3.0, 2.0).unwrap();
        assert!(n.pdf(3.0) > n.pdf(2.0));
        assert!(n.pdf(3.0) > n.pdf(4.0));
    }

    proptest! {
        #[test]
        fn quantile_inverts_cdf(
            mean in -100.0f64..100.0,
            sd in 0.01f64..50.0,
            p in 0.001f64..0.999,
        ) {
            let n = Normal::new(mean, sd).unwrap();
            let x = n.quantile(p);
            prop_assert!((n.cdf(x) - p).abs() < 1e-9);
        }

        #[test]
        fn cdf_is_monotone(
            mean in -10.0f64..10.0,
            sd in 0.1f64..10.0,
            a in -50.0f64..50.0,
            d in 0.0f64..10.0,
        ) {
            let n = Normal::new(mean, sd).unwrap();
            prop_assert!(n.cdf(a + d) >= n.cdf(a));
        }
    }
}
