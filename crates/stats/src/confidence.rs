//! Monte Carlo confidence machinery.
//!
//! The paper sizes its simulations by confidence: *"the number of iterations
//! for the MC simulation, N_trials, depends on the confidence level, which
//! can be given as an input to the MC simulation framework"* (§5.2). This
//! module provides that input: distribution-free (order-statistic)
//! confidence intervals on quantiles, and the trial count needed before an
//! extreme percentile like the paper's 0.3%ile is resolved at all.

use crate::ecdf::Ecdf;
use crate::special::inverse_normal_cdf;

/// A two-sided confidence interval on a quantile.
///
/// # Example
///
/// ```
/// use emgrid_stats::{confidence::quantile_interval, Ecdf};
///
/// let e = Ecdf::new((1..=1000).map(f64::from).collect());
/// let ci = quantile_interval(&e, 0.5, 0.95);
/// assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileInterval {
    /// Lower confidence bound.
    pub lower: f64,
    /// The point estimate (the empirical quantile).
    pub estimate: f64,
    /// Upper confidence bound.
    pub upper: f64,
    /// Achieved (nominal) confidence level.
    pub confidence: f64,
}

/// Distribution-free confidence interval for the `p`-quantile of the
/// sampled distribution, using the normal approximation to the binomial
/// order-statistic bracket.
///
/// # Panics
///
/// Panics unless `0 < p < 1` and `0 < confidence < 1`.
pub fn quantile_interval(ecdf: &Ecdf, p: f64, confidence: f64) -> QuantileInterval {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let n = ecdf.len() as f64;
    let z = inverse_normal_cdf(0.5 + confidence / 2.0);
    let half_width = z * (p * (1.0 - p) / n).sqrt();
    let lo_p = (p - half_width).max(1.0 / n);
    let hi_p = (p + half_width).min(1.0);
    QuantileInterval {
        lower: ecdf.quantile(lo_p),
        estimate: ecdf.quantile(p),
        upper: ecdf.quantile(hi_p),
        confidence,
    }
}

/// Smallest sample size for which the `p`-quantile is an interior order
/// statistic at the given confidence — i.e. `P(at least one sample below
/// the p-quantile) >= confidence`, so the empirical estimate is not just
/// the sample minimum.
///
/// For the paper's 0.3%ile at 95% this gives ~1000 trials; the paper's 500
/// trials make the 0.3%ile estimate essentially the second order statistic,
/// which this function makes explicit.
///
/// # Panics
///
/// Panics unless `0 < p < 1` and `0 < confidence < 1`.
pub fn trials_to_resolve_quantile(p: f64, confidence: f64) -> usize {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    // P(no sample <= q_p) = (1-p)^n <= 1-confidence.
    ((1.0 - confidence).ln() / (1.0 - p).ln()).ceil() as usize
}

/// Standard error of an empirical CDF value at probability `p` for `n`
/// trials (binomial).
pub fn cdf_standard_error(p: f64, n: usize) -> f64 {
    (p * (1.0 - p) / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lognormal::LogNormal;
    use crate::seeded_rng;

    #[test]
    fn interval_brackets_the_true_quantile_usually() {
        let d = LogNormal::new(1.0, 0.4).unwrap();
        let mut rng = seeded_rng(2);
        let mut covered = 0;
        let runs = 60;
        for _ in 0..runs {
            let samples: Vec<f64> = (0..800).map(|_| d.sample(&mut rng)).collect();
            let e = Ecdf::new(samples);
            let ci = quantile_interval(&e, 0.5, 0.95);
            let truth = d.median();
            if ci.lower <= truth && truth <= ci.upper {
                covered += 1;
            }
        }
        // 95% nominal coverage; allow generous slack for 60 runs.
        assert!(covered >= 50, "coverage {covered}/{runs}");
    }

    #[test]
    fn interval_is_ordered_and_tightens_with_n() {
        let d = LogNormal::new(0.0, 0.3).unwrap();
        let mut rng = seeded_rng(3);
        let small = Ecdf::new((0..200).map(|_| d.sample(&mut rng)).collect());
        let large = Ecdf::new((0..20_000).map(|_| d.sample(&mut rng)).collect());
        let ci_s = quantile_interval(&small, 0.5, 0.95);
        let ci_l = quantile_interval(&large, 0.5, 0.95);
        assert!(ci_s.lower <= ci_s.estimate && ci_s.estimate <= ci_s.upper);
        assert!((ci_l.upper - ci_l.lower) < (ci_s.upper - ci_s.lower));
    }

    #[test]
    fn paper_percentile_needs_about_a_thousand_trials() {
        // 0.3%ile at 95%: n ~ ln(0.05)/ln(0.997) ~ 997.
        let n = trials_to_resolve_quantile(0.003, 0.95);
        assert!((900..1100).contains(&n), "n = {n}");
        // The paper's 500 trials resolve it only at ~77% confidence.
        let n_softer = trials_to_resolve_quantile(0.003, 0.77);
        assert!(n_softer <= 500, "n = {n_softer}");
    }

    #[test]
    fn standard_error_shrinks_with_sqrt_n() {
        let a = cdf_standard_error(0.5, 100);
        let b = cdf_standard_error(0.5, 400);
        assert!((a / b - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn rejects_bad_probability() {
        trials_to_resolve_quantile(0.0, 0.95);
    }
}
