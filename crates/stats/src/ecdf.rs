//! Empirical cumulative distribution functions and percentile reporting.
//!
//! Every Monte Carlo experiment in the paper is reported as a CDF plot
//! (Figs. 8–10) or as the worst-case **0.3 percentile** TTF (Table 2); this
//! module turns raw TTF samples into those artifacts.

/// An empirical CDF over a finite sample.
///
/// # Example
///
/// ```
/// use emgrid_stats::Ecdf;
///
/// let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
/// assert_eq!(e.cdf(2.5), 0.5);
/// assert_eq!(e.quantile(0.5), 2.0);
/// assert_eq!(e.min(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples (NaNs are removed).
    ///
    /// # Panics
    ///
    /// Panics if no finite sample remains.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| !v.is_nan());
        assert!(!samples.is_empty(), "ECDF needs at least one finite sample");
        samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaNs removed"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Fraction of samples `<= x`.
    pub fn cdf(&self, x: f64) -> f64 {
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile: the smallest sample `v` with `cdf(v) >= p`.
    ///
    /// `p <= 0` returns the minimum; `p >= 1` the maximum.
    pub fn quantile(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return self.min();
        }
        if p >= 1.0 {
            return self.max();
        }
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// The paper's "worst-case" percentile: the 0.3%ile (`p = 0.003`).
    pub fn worst_case(&self) -> f64 {
        self.quantile(0.003)
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Sample median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Unbiased sample standard deviation (0 for a single sample).
    pub fn sd(&self) -> f64 {
        let n = self.sorted.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        (self
            .sorted
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (n as f64 - 1.0))
            .sqrt()
    }

    /// Evaluates the CDF on a uniform grid of `points` values spanning the
    /// sample range; returns `(x, F(x))` pairs suitable for plotting the
    /// paper's CDF figures.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two curve points");
        let (lo, hi) = (self.min(), self.max());
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        (0..points)
            .map(|i| {
                let x = lo + span * i as f64 / (points - 1) as f64;
                (x, self.cdf(x))
            })
            .collect()
    }
}

impl FromIterator<f64> for Ecdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Ecdf::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cdf_counts_inclusive() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(10.0), 1.0);
    }

    #[test]
    fn quantile_edge_probabilities() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 5.0);
        assert_eq!(e.quantile(-1.0), 1.0);
        assert_eq!(e.quantile(2.0), 5.0);
    }

    #[test]
    fn worst_case_is_min_for_small_samples() {
        // With 500 samples, the 0.3%ile is the 2nd order statistic.
        let samples: Vec<f64> = (1..=500).map(|i| i as f64).collect();
        let e = Ecdf::new(samples);
        assert_eq!(e.worst_case(), 2.0);
    }

    #[test]
    fn summary_statistics() {
        let e = Ecdf::new(vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(e.mean(), 5.0);
        assert_eq!(e.median(), 4.0);
        assert!((e.sd() - (20.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn nans_are_dropped() {
        let e = Ecdf::new(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one finite sample")]
    fn all_nan_panics() {
        Ecdf::new(vec![f64::NAN]);
    }

    #[test]
    fn curve_spans_sample_range() {
        let e = Ecdf::new(vec![0.0, 10.0, 5.0]);
        let c = e.curve(11);
        assert_eq!(c.len(), 11);
        assert_eq!(c[0].0, 0.0);
        assert_eq!(c[10].0, 10.0);
        assert_eq!(c[10].1, 1.0);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone(
            mut samples in proptest::collection::vec(-100.0f64..100.0, 1..50),
            a in -120.0f64..120.0,
            d in 0.0f64..50.0,
        ) {
            samples.push(0.0);
            let e = Ecdf::new(samples);
            prop_assert!(e.cdf(a + d) >= e.cdf(a));
        }

        #[test]
        fn quantile_cdf_galois(
            samples in proptest::collection::vec(-100.0f64..100.0, 1..50),
            p in 0.01f64..1.0,
        ) {
            let e = Ecdf::new(samples);
            // cdf(quantile(p)) >= p by definition of the empirical quantile.
            prop_assert!(e.cdf(e.quantile(p)) >= p - 1e-12);
        }
    }
}
