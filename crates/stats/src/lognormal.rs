//! The two-parameter lognormal distribution.
//!
//! Lognormals are the paper's workhorse: the flaw radius `R_f` (hence the
//! critical stress `σ_C` through Eq. 4), the effective diffusivity, per-via
//! nucleation times, and the fitted via-array TTFs that feed the power-grid
//! Monte Carlo are all modeled as lognormal.

use crate::normal::Normal;
use crate::rng::Rng;
use crate::InvalidParameterError;

/// A lognormal distribution: `ln X ~ N(mu, sigma²)`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), emgrid_stats::InvalidParameterError> {
/// use emgrid_stats::LogNormal;
///
/// // Flaw radius per the paper: mean 10 nm, sd 5% of the mean.
/// let rf = LogNormal::from_mean_sd(10e-9, 0.5e-9)?;
/// assert!((rf.mean() - 10e-9).abs() < 1e-15);
/// assert!((rf.cdf(rf.median()) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from the log-space parameters `mu`, `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if `sigma <= 0` or a parameter is
    /// not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, InvalidParameterError> {
        if !mu.is_finite() {
            return Err(InvalidParameterError {
                parameter: "mu",
                value: mu,
            });
        }
        if !(sigma > 0.0 && sigma.is_finite()) {
            return Err(InvalidParameterError {
                parameter: "sigma",
                value: sigma,
            });
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Creates a lognormal with the given **linear-space** mean and standard
    /// deviation by moment matching.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] unless `mean > 0` and `sd > 0`.
    pub fn from_mean_sd(mean: f64, sd: f64) -> Result<Self, InvalidParameterError> {
        if !(mean > 0.0 && mean.is_finite()) {
            return Err(InvalidParameterError {
                parameter: "mean",
                value: mean,
            });
        }
        if !(sd > 0.0 && sd.is_finite()) {
            return Err(InvalidParameterError {
                parameter: "sd",
                value: sd,
            });
        }
        let cv2 = (sd / mean) * (sd / mean);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        LogNormal::new(mu, sigma2.sqrt())
    }

    /// Creates a lognormal with a given median and log-space sigma.
    ///
    /// Reliability engineers typically report `t_50` (the median) and the
    /// lognormal `sigma`; this constructor matches that convention.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] unless `median > 0` and `sigma > 0`.
    pub fn from_median_sigma(median: f64, sigma: f64) -> Result<Self, InvalidParameterError> {
        if !(median > 0.0 && median.is_finite()) {
            return Err(InvalidParameterError {
                parameter: "median",
                value: median,
            });
        }
        LogNormal::new(median.ln(), sigma)
    }

    /// Log-space location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space scale parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Linear-space mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// Linear-space variance.
    pub fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    /// Linear-space standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Probability density at `x` (0 for `x <= 0`).
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative probability at `x` (0 for `x <= 0`).
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        crate::special::normal_cdf((x.ln() - self.mu) / self.sigma)
    }

    /// Quantile (inverse CDF) at probability `p`.
    ///
    /// Returns `0` for `p <= 0` and `INFINITY` for `p >= 1`.
    pub fn quantile(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return 0.0;
        }
        if p >= 1.0 {
            return f64::INFINITY;
        }
        (self.mu + self.sigma * crate::special::inverse_normal_cdf(p)).exp()
    }

    /// Draws one sample by inverse-CDF transform (one uniform per draw).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * rng.next_standard_normal()).exp()
    }

    /// Multiplies the distribution by a positive constant: `c·X` is lognormal
    /// with `mu + ln c`.
    ///
    /// This is how characterization at a reference current density is scaled
    /// to a different current (the paper's TTF ∝ 1/j² rescaling).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] unless `c > 0`.
    pub fn scaled(&self, c: f64) -> Result<Self, InvalidParameterError> {
        if !(c > 0.0 && c.is_finite()) {
            return Err(InvalidParameterError {
                parameter: "c",
                value: c,
            });
        }
        LogNormal::new(self.mu + c.ln(), self.sigma)
    }

    /// Raises the distribution to a power: `X^k` is lognormal with
    /// `(k·mu, |k|·sigma)`.
    ///
    /// Used for the `(σ_C − σ_T)²` term of the nucleation model.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if `k == 0` or is not finite.
    pub fn powered(&self, k: f64) -> Result<Self, InvalidParameterError> {
        if k == 0.0 || !k.is_finite() {
            return Err(InvalidParameterError {
                parameter: "k",
                value: k,
            });
        }
        LogNormal::new(k * self.mu, k.abs() * self.sigma)
    }

    /// Fits by maximum likelihood (mean/sd of the log samples).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if fewer than two samples are given,
    /// any sample is non-positive, or the log-samples are constant.
    pub fn fit_mle(samples: &[f64]) -> Result<Self, InvalidParameterError> {
        if samples.len() < 2 {
            return Err(InvalidParameterError {
                parameter: "samples.len",
                value: samples.len() as f64,
            });
        }
        let mut logs = Vec::with_capacity(samples.len());
        for &s in samples {
            if !(s > 0.0 && s.is_finite()) {
                return Err(InvalidParameterError {
                    parameter: "sample",
                    value: s,
                });
            }
            logs.push(s.ln());
        }
        let fit = Normal::fit(&logs)?;
        LogNormal::new(fit.mean(), fit.sd())
    }

    /// Fits by matching the first two linear-space moments.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogNormal::fit_mle`].
    pub fn fit_moments(samples: &[f64]) -> Result<Self, InvalidParameterError> {
        if samples.len() < 2 {
            return Err(InvalidParameterError {
                parameter: "samples.len",
                value: samples.len() as f64,
            });
        }
        for &s in samples {
            if !(s > 0.0 && s.is_finite()) {
                return Err(InvalidParameterError {
                    parameter: "sample",
                    value: s,
                });
            }
        }
        let fit = Normal::fit(samples)?;
        LogNormal::from_mean_sd(fit.mean(), fit.sd())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use proptest::prelude::*;

    #[test]
    fn moment_matching_round_trips() {
        let d = LogNormal::from_mean_sd(10.0, 3.0).unwrap();
        assert!((d.mean() - 10.0).abs() < 1e-12);
        assert!((d.sd() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn median_sigma_constructor() {
        let d = LogNormal::from_median_sigma(7.0, 0.4).unwrap();
        assert!((d.median() - 7.0).abs() < 1e-12);
        assert!((d.sigma() - 0.4).abs() < 1e-15);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::from_mean_sd(-1.0, 1.0).is_err());
        assert!(LogNormal::from_mean_sd(1.0, 0.0).is_err());
        assert!(LogNormal::from_median_sigma(0.0, 1.0).is_err());
    }

    #[test]
    fn pdf_zero_below_support() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.pdf(0.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
    }

    #[test]
    fn scaling_shifts_mu() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let s = d.scaled(4.0).unwrap();
        assert!((s.median() - 4.0 * d.median()).abs() < 1e-9);
        assert!((s.sigma() - d.sigma()).abs() < 1e-15);
        assert!(d.scaled(0.0).is_err());
    }

    #[test]
    fn powering_squares_quantiles() {
        let d = LogNormal::new(0.3, 0.2).unwrap();
        let sq = d.powered(2.0).unwrap();
        let q = d.quantile(0.8);
        assert!((sq.quantile(0.8) - q * q).abs() < 1e-9);
    }

    #[test]
    fn mle_fit_recovers_parameters() {
        let d = LogNormal::new(2.0, 0.3).unwrap();
        let mut rng = seeded_rng(11);
        let samples: Vec<f64> = (0..30_000).map(|_| d.sample(&mut rng)).collect();
        let fit = LogNormal::fit_mle(&samples).unwrap();
        assert!((fit.mu() - 2.0).abs() < 0.01, "mu {}", fit.mu());
        assert!((fit.sigma() - 0.3).abs() < 0.01, "sigma {}", fit.sigma());
    }

    #[test]
    fn fit_rejects_nonpositive_samples() {
        assert!(LogNormal::fit_mle(&[1.0, -2.0, 3.0]).is_err());
        assert!(LogNormal::fit_moments(&[1.0, 0.0]).is_err());
    }

    #[test]
    fn flaw_radius_critical_stress_spread_matches_paper() {
        // Paper §2.2: Rf ~ lognormal(mean 10 nm, sd 5%), σ_C = 2γs/Rf can
        // vary by "as much as 100 MPa". With γs = 1.7 J/m², check the ±3σ
        // spread of σ_C is on the order of 100 MPa.
        let rf = LogNormal::from_mean_sd(10e-9, 0.5e-9).unwrap();
        let sigma_c = |r: f64| 2.0 * 1.7 / r;
        let lo = sigma_c(rf.quantile(0.9987));
        let hi = sigma_c(rf.quantile(0.0013));
        let spread_mpa = (hi - lo) / 1e6;
        assert!(
            spread_mpa > 60.0 && spread_mpa < 150.0,
            "spread {spread_mpa} MPa"
        );
    }

    proptest! {
        #[test]
        fn quantile_inverts_cdf(
            mu in -3.0f64..3.0,
            sigma in 0.05f64..1.5,
            p in 0.001f64..0.999,
        ) {
            let d = LogNormal::new(mu, sigma).unwrap();
            let x = d.quantile(p);
            prop_assert!((d.cdf(x) - p).abs() < 1e-8);
        }

        #[test]
        fn mean_exceeds_median(
            mu in -2.0f64..2.0,
            sigma in 0.05f64..1.0,
        ) {
            // Lognormals are right-skewed: mean > median always.
            let d = LogNormal::new(mu, sigma).unwrap();
            prop_assert!(d.mean() > d.median());
        }

        #[test]
        fn samples_lie_in_support(
            mu in -2.0f64..2.0,
            sigma in 0.05f64..1.0,
            seed in 0u64..1000,
        ) {
            let d = LogNormal::new(mu, sigma).unwrap();
            let mut rng = seeded_rng(seed);
            for _ in 0..32 {
                prop_assert!(d.sample(&mut rng) > 0.0);
            }
        }
    }
}
