//! Streaming (online) statistics: Welford's algorithm with Chan's merge.
//!
//! The parallel Monte Carlo runtime fits lognormals *incrementally*: every
//! trial pushes `ln(TTF)` into an [`OnlineStats`], and the accumulated
//! mean/variance are exactly the MLE `(mu, sigma)` of a lognormal fit — so
//! confidence-interval-based early termination can be evaluated after any
//! number of trials without re-scanning the sample vector.
//!
//! Welford's update is numerically stable (no catastrophic cancellation in
//! the variance), and [`OnlineStats::merge`] combines partial accumulators
//! with Chan et al.'s parallel update, so per-thread accumulators can be
//! folded deterministically in trial order.

use crate::special::inverse_normal_cdf;

/// A running mean/variance accumulator (Welford), mergeable across threads.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Pushes one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    ///
    /// `a.merge(&b)` equals pushing all of `b`'s observations after `a`'s,
    /// up to floating-point rounding.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n−1 denominator); 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Population variance (n denominator) — the lognormal MLE `sigma²`
    /// when the observations are `ln(TTF)`.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean; `+inf` with fewer than two samples.
    pub fn standard_error(&self) -> f64 {
        if self.count < 2 {
            f64::INFINITY
        } else {
            self.sd() / (self.count as f64).sqrt()
        }
    }

    /// The raw accumulator fields `(count, mean, m2, min, max)`, for
    /// checkpoint serialization. Round-trips bit-exactly through
    /// [`OnlineStats::from_raw_parts`].
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`OnlineStats::raw_parts`] output, so a
    /// checkpointed Monte Carlo session can resume its streamed statistics
    /// bit-exactly.
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        OnlineStats {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Half-width of the two-sided confidence interval on the mean at the
    /// given confidence level (normal approximation).
    ///
    /// When the observations are `ln(TTF)`, this is the half-width of the
    /// CI on the fitted lognormal's `mu` — equivalently, the relative
    /// precision of the fitted median (`exp(mu ± hw)`), which is what the
    /// runtime's early-termination criterion bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    pub fn ci_half_width(&self, confidence: f64) -> f64 {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1)"
        );
        inverse_normal_cdf(0.5 + confidence / 2.0) * self.standard_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::seeded_rng;

    #[test]
    fn matches_batch_mean_and_variance() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.count(), 8);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential_push() {
        let mut rng = seeded_rng(11);
        let data: Vec<f64> = (0..1000).map(|_| rng.next_f64() * 10.0 - 3.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        for split in [1, 137, 500, 999] {
            let (a, b) = data.split_at(split);
            let mut left = OnlineStats::new();
            let mut right = OnlineStats::new();
            a.iter().for_each(|&x| left.push(x));
            b.iter().for_each(|&x| right.push(x));
            left.merge(&right);
            assert_eq!(left.count(), whole.count());
            assert!((left.mean() - whole.mean()).abs() < 1e-12);
            assert!((left.variance() - whole.variance()).abs() < 1e-10);
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(3.0);
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci_half_width_shrinks_with_n() {
        let mut rng = seeded_rng(13);
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10_000 {
            let x = rng.next_standard_normal();
            if i < 100 {
                small.push(x);
            }
            large.push(x);
        }
        assert!(large.ci_half_width(0.95) < small.ci_half_width(0.95) / 5.0);
        // z(0.95) ~ 1.96: half-width ~ 1.96 * sd / sqrt(n).
        let expect = 1.959963984540054 * large.sd() / (large.count() as f64).sqrt();
        assert!((large.ci_half_width(0.95) - expect).abs() < 1e-12);
    }

    #[test]
    fn raw_parts_round_trip_is_bit_exact() {
        let mut s = OnlineStats::new();
        let mut rng = seeded_rng(17);
        for _ in 0..257 {
            s.push(rng.next_standard_normal());
        }
        let (count, mean, m2, min, max) = s.raw_parts();
        let back = OnlineStats::from_raw_parts(count, mean, m2, min, max);
        assert_eq!(back, s);
        assert_eq!(back.mean().to_bits(), s.mean().to_bits());
        assert_eq!(back.variance().to_bits(), s.variance().to_bits());
        // Continuing to push after the round trip matches the original.
        let mut a = s;
        let mut b = back;
        a.push(1.25);
        b.push(1.25);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_counts_are_safe() {
        let mut s = OnlineStats::new();
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.standard_error(), f64::INFINITY);
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci_half_width(0.95), f64::INFINITY);
    }
}
