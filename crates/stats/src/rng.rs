//! Deterministic random number generation, built from scratch.
//!
//! The workspace is std-only, so instead of the `rand` crate this module
//! provides a small xoshiro256++ generator (Blackman & Vigna's public-domain
//! algorithm) seeded through SplitMix64, plus the **stream derivation**
//! scheme the parallel Monte Carlo runtime relies on: every trial index maps
//! to an independent generator, so a simulation's output depends only on
//! `(seed, trial)` and never on which thread ran the trial.
//!
//! # Stream derivation
//!
//! [`stream_rng`]`(seed, stream)` perturbs the base seed with the stream
//! index multiplied by the 64-bit golden ratio, then pushes the result
//! through four rounds of SplitMix64 to fill the 256-bit xoshiro state:
//!
//! ```text
//! state0 = seed XOR (stream + 1) * 0x9E3779B97F4A7C15
//! s[i]   = splitmix64(state0), i = 0..4
//! ```
//!
//! SplitMix64's finalizer is a bijective avalanche, so nearby `(seed,
//! stream)` pairs land on decorrelated states. The same scheme backs
//! `emgrid-runtime`'s work-stealing scheduler: because the per-trial
//! generator is derived, not shared, results are bit-identical for any
//! thread count.

/// A source of uniformly distributed random bits and floats.
///
/// This is the workspace's replacement for `rand::Rng`: object-safe, with
/// just the surface the Monte Carlo engines need. All sampling in
/// `emgrid-stats` distributions goes through [`Rng::next_open_f64`] and the
/// inverse-CDF transform, so one draw consumes exactly one `u64` — which
/// keeps per-trial stream consumption easy to reason about.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from the **open** interval `(0, 1)`.
    ///
    /// Open at both ends so it can be passed straight to a quantile
    /// function without producing infinities.
    fn next_open_f64(&mut self) -> f64 {
        // 53 high bits, offset by half an ulp: never exactly 0 or 1.
        ((self.next_u64() >> 11) as f64 + 0.5) * (1.0 / 9_007_199_254_740_992.0)
    }

    /// A uniform draw from `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection so the result is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A draw from the standard normal distribution via the inverse CDF.
    fn next_standard_normal(&mut self) -> f64 {
        crate::special::inverse_normal_cdf(self.next_open_f64())
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64: advances `state` and returns a mixed output.
///
/// Used only for seeding; the finalizer is Stafford's "mix 13" variant as
/// published by Vigna.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's deterministic generator: xoshiro256++.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; the `++` output
/// scrambler makes all 64 output bits full-strength.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64 (the
    /// initialization Vigna recommends).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl Rng for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Creates a deterministic, seedable random number generator.
///
/// All Monte Carlo entry points in the workspace take a seed so experiments
/// are reproducible run to run.
pub fn seeded_rng(seed: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed)
}

/// Derives the generator for one independent stream (e.g. one Monte Carlo
/// trial) of a seeded experiment.
///
/// See the module docs for the derivation scheme. Trials indexed by
/// `stream` under the same `seed` draw from decorrelated sequences, and the
/// mapping is pure: any thread may run any trial and produce the same
/// numbers.
pub fn stream_rng(seed: u64, stream: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed ^ stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Derives one named sub-stream of a trial's generator.
///
/// A variation-enabled Monte Carlo trial draws from several independent
/// sources — void nucleation (critical stress), environmental fields
/// (temperature), geometry (linewidth) — and each source must stay
/// independent of the others *and* of the legacy single-stream draws, so
/// enabling one source never shifts another's sequence. The `channel`
/// index is folded into the base seed with a second odd 64-bit constant
/// (from MurmurHash3's finalizer family) before the usual per-`stream`
/// derivation, so `substream_rng(seed, t, c)` never aliases
/// `stream_rng(seed, t)` for any small `c`.
pub fn substream_rng(seed: u64, stream: u64, channel: u64) -> Xoshiro256 {
    let child = seed ^ channel.wrapping_add(1).wrapping_mul(0xD2B7_4407_B1CE_6E93);
    stream_rng(child, stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_matches_xoshiro256pp() {
        // First outputs of xoshiro256++ from the all-distinct small state
        // {1, 2, 3, 4} (cross-checked against the reference C code).
        let mut rng = Xoshiro256 { s: [1, 2, 3, 4] };
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(first[0], 41943041);
        assert_eq!(first[1], 58720359);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let mut c = seeded_rng(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut s0 = stream_rng(7, 0);
        let mut s1 = stream_rng(7, 1);
        let v0: Vec<u64> = (0..16).map(|_| s0.next_u64()).collect();
        let v1: Vec<u64> = (0..16).map(|_| s1.next_u64()).collect();
        assert_ne!(v0, v1);
        // No trivial overlap: stream 1 is not a shift of stream 0.
        for lag in 0..8 {
            assert_ne!(v0[lag..8 + lag], v1[..8]);
        }
    }

    #[test]
    fn open_f64_stays_in_the_open_interval() {
        let mut rng = seeded_rng(1);
        for _ in 0..10_000 {
            let u = rng.next_open_f64();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = seeded_rng(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = seeded_rng(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded_rng(4);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
