//! Statistics substrate for the `emgrid` workspace.
//!
//! The paper's reliability flow is statistical end to end: the critical
//! stress `σ_C` is lognormal through the flaw radius (its Eq. 4), per-via
//! times-to-failure are lognormal, via-array TTFs are *fitted* to two-
//! parameter lognormals before being passed to the power-grid Monte Carlo,
//! and results are reported as empirical CDFs and extreme percentiles
//! (the 0.3%ile "worst case" of Table 2). This crate supplies exactly those
//! tools, built from scratch:
//!
//! * [`Normal`] and [`LogNormal`] with pdf / cdf / quantile / sampling and
//!   moment or maximum-likelihood fitting,
//! * [`wilkinson::sum_of_lognormals`] — the Fenton–Wilkinson moment-matching
//!   approximation the paper invokes to argue the TTF is lognormal,
//! * [`Ecdf`] — empirical CDFs, percentiles and summary statistics,
//! * [`ks`] — Kolmogorov–Smirnov distances for fit-quality checks,
//! * [`special`] — `erf`/`erfc`/`Φ` and the inverse normal CDF.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), emgrid_stats::InvalidParameterError> {
//! use emgrid_stats::{LogNormal, Ecdf, seeded_rng};
//!
//! let mut rng = seeded_rng(7);
//! let d = LogNormal::from_mean_sd(10.0, 0.5)?;
//! let samples: Vec<f64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
//! let ecdf = Ecdf::new(samples);
//! // The sample median is close to the distribution median.
//! assert!((ecdf.quantile(0.5) - d.median()).abs() < 0.1);
//! # Ok(())
//! # }
//! ```

pub mod confidence;
pub mod ecdf;
pub mod ks;
pub mod lognormal;
pub mod normal;
pub mod online;
pub mod rng;
pub mod special;
pub mod wilkinson;

pub use confidence::{quantile_interval, trials_to_resolve_quantile, QuantileInterval};
pub use ecdf::Ecdf;
pub use ks::{ks_statistic, ks_two_sample};
pub use lognormal::LogNormal;
pub use normal::Normal;
pub use online::OnlineStats;
pub use rng::{seeded_rng, stream_rng, substream_rng, Rng, Xoshiro256};
pub use special::{erf, erfc, inverse_normal_cdf, normal_cdf};

/// Error raised when distribution parameters are invalid.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidParameterError {
    /// Name of the offending parameter.
    pub parameter: &'static str,
    /// The rejected value.
    pub value: f64,
}

impl std::fmt::Display for InvalidParameterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid value {} for parameter `{}`",
            self.value, self.parameter
        )
    }
}

impl std::error::Error for InvalidParameterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn invalid_parameter_error_displays() {
        let e = InvalidParameterError {
            parameter: "sigma",
            value: -1.0,
        };
        assert_eq!(e.to_string(), "invalid value -1 for parameter `sigma`");
    }
}
