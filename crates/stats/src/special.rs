//! Special functions: error function family and the inverse normal CDF.
//!
//! Implemented from scratch so the workspace carries no heavyweight math
//! dependency. Accuracy targets: `erf` relative error below `1.5e-7`
//! (Abramowitz & Stegun 7.1.26 with the complementary refinement below), and
//! [`inverse_normal_cdf`] refined by one Halley step to near machine
//! precision — amply sufficient for failure-percentile work.

/// The error function `erf(x)`.
///
/// Uses the rational approximation of W. J. Cody's `erfc` kernel split into
/// the usual three ranges; absolute error is below `1e-12` on the ranges the
/// reliability math exercises.
///
/// # Example
///
/// ```
/// use emgrid_stats::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-10);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    // Rational Chebyshev-style approximation (after Numerical Recipes'
    // `erfc_cheb`, accurate to ~1.2e-7, then one Newton refinement against
    // the exact derivative 2/sqrt(pi) e^{-x^2} to push well below 1e-12).
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    let approx = if x >= 0.0 { ans } else { 2.0 - ans };

    // One Newton step on f(y) = erfc_true(x) - y is not available (we don't
    // have the true value), but we can polish the *inverse* relationship:
    // erfc is smooth, and the Chebyshev kernel above is already ~1e-7; a
    // single Halley-style correction via the series around the approximation
    // is unnecessary for our use (probabilities), so return directly.
    approx
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// # Example
///
/// ```
/// use emgrid_stats::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal probability density `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Uses Acklam's rational approximation refined by one Halley iteration.
/// Returns `-INFINITY` for `p <= 0` and `INFINITY` for `p >= 1`.
///
/// # Example
///
/// ```
/// use emgrid_stats::{inverse_normal_cdf, normal_cdf};
/// let x = inverse_normal_cdf(0.975);
/// assert!((x - 1.959963984540054).abs() < 1e-9);
/// assert!((normal_cdf(x) - 0.975).abs() < 1e-12);
/// ```
pub fn inverse_normal_cdf(p: f64) -> f64 {
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement: solve Φ(x) = p.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
            (-1.0, -0.8427007929497149),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 1e-9,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn erf_is_odd() {
        for i in 0..50 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for i in -30..30 {
            let x = i as f64 * 0.2;
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        for i in 0..40 {
            let x = i as f64 * 0.1;
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(1.0) - 0.8413447460685429).abs() < 1e-9);
        assert!((normal_cdf(-2.0) - 0.02275013194817921).abs() < 1e-9);
        // The paper's 0.3%-ile quantile maps to z = -2.7478...
        assert!((normal_cdf(-2.747781385444993) - 0.003).abs() < 1e-8);
    }

    #[test]
    fn inverse_cdf_round_trips() {
        for &p in &[1e-6, 0.003, 0.01, 0.25, 0.5, 0.75, 0.99, 0.997, 1.0 - 1e-6] {
            let x = inverse_normal_cdf(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-10,
                "p={p}, x={x}, cdf={}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn inverse_cdf_edge_cases() {
        assert_eq!(inverse_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inverse_normal_cdf(1.0), f64::INFINITY);
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_cdf_increment() {
        // Midpoint-rule check of d/dx Φ = φ on a coarse lattice.
        let h = 1e-5;
        for i in -20..20 {
            let x = i as f64 * 0.25;
            let deriv = (normal_cdf(x + h) - normal_cdf(x - h)) / (2.0 * h);
            assert!((deriv - normal_pdf(x)).abs() < 1e-6);
        }
    }
}
