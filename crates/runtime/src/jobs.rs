//! A bounded-queue job engine with a worker pool, cancellation and graceful
//! shutdown — the execution core behind the `emgrid serve` daemon.
//!
//! The engine is deliberately small and `std`-only: a FIFO queue guarded by
//! a mutex, a fixed pool of worker threads woken by a condvar, and per-job
//! [`CancelToken`]s that thread down into the Monte Carlo scheduler (see
//! [`TrialSession`](crate::TrialSession)). Determinism is the callers'
//! responsibility and comes for free from the trial scheduler: a job's
//! result depends only on its spec and seed, never on which worker ran it
//! or how long it sat in the queue.
//!
//! State machine (mirrored in `DESIGN.md`):
//!
//! ```text
//! queued ──▶ running ──▶ done
//!    │          │  ▲
//!    │          │  └── checkpointed (running with ≥1 checkpoint written)
//!    │          ├────▶ cancelled   (token tripped mid-run)
//!    │          └────▶ failed      (job fn error or panic)
//!    └───────────────▶ cancelled   (dequeued before a worker picked it up)
//! ```

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::payload_message;

/// Monotonic identifier of a submitted job.
pub type JobId = u64;

/// A shareable cooperative cancellation flag.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same flag.
/// Workers poll it between trial claims, so cancellation latency is one
/// trial, not one job.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the token; every holder sees it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// The underlying flag, for the trial scheduler's inner loop.
    pub(crate) fn flag(&self) -> &AtomicBool {
        &self.0
    }
}

/// Observable lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the FIFO queue.
    Queued,
    /// Claimed by a worker, no checkpoint written yet.
    Running,
    /// Running, and at least one checkpoint has been recorded via
    /// [`JobCtx::note_checkpoint`].
    Checkpointed,
    /// Finished with a result.
    Done,
    /// Cancelled — either dequeued before running or stopped mid-run.
    Cancelled,
    /// The job function returned failure or panicked.
    Failed,
}

impl JobStatus {
    /// Whether the job can make no further progress.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Cancelled | JobStatus::Failed
        )
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Checkpointed => "checkpointed",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed => "failed",
        };
        f.write_str(s)
    }
}

/// What a job function reports back to the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome<R> {
    /// Completed with a result.
    Done(R),
    /// Observed its cancellation token and stopped early (after
    /// checkpointing, if the job checkpoints).
    Cancelled,
    /// Failed with a human-readable reason.
    Failed(String),
}

/// Handle passed to a running job function.
pub struct JobCtx {
    /// The job's id (e.g. for deriving its on-disk state directory).
    pub id: JobId,
    /// This job's cancellation token; thread it into
    /// [`TrialSession::cancel`](crate::TrialSession::cancel).
    pub cancel: CancelToken,
    checkpoints: Arc<AtomicU64>,
}

impl JobCtx {
    /// Records that a checkpoint was persisted; flips the observable status
    /// from `running` to `checkpointed` and feeds the daemon's metrics.
    pub fn note_checkpoint(&self) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; retry after jobs drain.
    QueueFull,
    /// The engine is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("job queue is full"),
            SubmitError::ShuttingDown => f.write_str("engine is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A point-in-time view of one job.
#[derive(Debug, Clone)]
pub struct JobSnapshot<R> {
    /// The job's id.
    pub id: JobId,
    /// Lifecycle state at snapshot time.
    pub status: JobStatus,
    /// Checkpoints recorded so far.
    pub checkpoints: u64,
    /// The result, present iff `status == Done`.
    pub result: Option<R>,
    /// The failure reason, present iff `status == Failed`.
    pub error: Option<String>,
}

type JobFn<R> = Box<dyn FnOnce(&JobCtx) -> JobOutcome<R> + Send>;

struct JobRecord<R> {
    status: JobStatus,
    cancel: CancelToken,
    checkpoints: Arc<AtomicU64>,
    result: Option<R>,
    error: Option<String>,
}

impl<R> JobRecord<R> {
    fn observable_status(&self) -> JobStatus {
        if self.status == JobStatus::Running && self.checkpoints.load(Ordering::Relaxed) > 0 {
            JobStatus::Checkpointed
        } else {
            self.status
        }
    }
}

/// Default cap on retained terminal [`JobRecord`]s (see
/// [`JobEngine::with_retention`]). Without a cap the `jobs` map — each
/// `Done` record holding its full result — grows for the engine's
/// lifetime, a memory leak proportional to every job ever submitted.
const DEFAULT_TERMINAL_RETENTION: usize = 1024;

struct EngineState<R> {
    queue: VecDeque<(JobId, JobFn<R>)>,
    jobs: HashMap<JobId, JobRecord<R>>,
    /// Terminal job ids, oldest first; beyond the retention cap the oldest
    /// record is dropped and its id behaves like an unknown id.
    terminal: VecDeque<JobId>,
    next_id: JobId,
    running: usize,
    shutting_down: bool,
}

impl<R> EngineState<R> {
    /// Records a job as terminal and evicts the oldest terminal records
    /// past the cap. Live (queued/running) records are never evicted.
    fn retire(&mut self, id: JobId, retention: usize) {
        self.terminal.push_back(id);
        while self.terminal.len() > retention {
            if let Some(old) = self.terminal.pop_front() {
                self.jobs.remove(&old);
            }
        }
    }
}

struct EngineShared<R> {
    state: Mutex<EngineState<R>>,
    /// Signalled when work arrives or shutdown starts (workers wait here).
    work: Condvar,
    /// Signalled when a job reaches a terminal state (pollers wait here).
    done: Condvar,
    queue_depth: usize,
    /// Terminal records kept in memory before eviction.
    retention: usize,
}

/// A bounded FIFO job queue drained by a fixed worker pool.
///
/// `R` is the job result type (the daemon uses the serialized result path).
/// Jobs are boxed closures receiving a [`JobCtx`]; a panicking job is
/// caught and recorded as [`JobStatus::Failed`] with the panic message —
/// workers never die.
pub struct JobEngine<R: Send + 'static> {
    shared: Arc<EngineShared<R>>,
    workers: Vec<JoinHandle<()>>,
}

impl<R: Send + 'static> JobEngine<R> {
    /// Starts `workers` worker threads over a queue bounded at
    /// `queue_depth` jobs, retaining the last
    /// [`DEFAULT_TERMINAL_RETENTION`] terminal records in memory.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` or `queue_depth == 0`.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        Self::with_retention(workers, queue_depth, DEFAULT_TERMINAL_RETENTION)
    }

    /// As [`JobEngine::new`], keeping at most `retention` terminal job
    /// records in memory. Older terminal records are evicted (their ids
    /// then behave like unknown ids), which bounds the engine's memory over
    /// a long-running daemon's lifetime; durable status lives with the
    /// caller (the daemon's `JobStore`), not the engine.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `queue_depth` or `retention` is 0.
    pub fn with_retention(workers: usize, queue_depth: usize, retention: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(queue_depth > 0, "need a positive queue depth");
        assert!(retention > 0, "need a positive terminal retention");
        let shared = Arc::new(EngineShared {
            state: Mutex::new(EngineState {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                terminal: VecDeque::new(),
                next_id: 1,
                running: 0,
                shutting_down: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            queue_depth,
            retention,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("emgrid-job-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn job worker")
            })
            .collect();
        JobEngine {
            shared,
            workers: handles,
        }
    }

    /// Enqueues a job and returns its id.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::ShuttingDown`] once shutdown has begun.
    pub fn submit<F>(&self, job: F) -> Result<JobId, SubmitError>
    where
        F: FnOnce(&JobCtx) -> JobOutcome<R> + Send + 'static,
    {
        let mut state = self.shared.state.lock().unwrap();
        let id = state.next_id;
        self.enqueue(&mut state, id, Box::new(job))?;
        state.next_id = id + 1;
        drop(state);
        self.shared.work.notify_one();
        Ok(id)
    }

    /// Enqueues a job under a caller-chosen id — used on daemon restart to
    /// requeue persisted jobs under their original ids. Future auto-ids are
    /// kept strictly above `id`.
    ///
    /// # Errors
    ///
    /// As [`JobEngine::submit`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is 0 or already known to the engine.
    pub fn submit_with_id<F>(&self, id: JobId, job: F) -> Result<JobId, SubmitError>
    where
        F: FnOnce(&JobCtx) -> JobOutcome<R> + Send + 'static,
    {
        assert!(id > 0, "job ids start at 1");
        let mut state = self.shared.state.lock().unwrap();
        assert!(
            !state.jobs.contains_key(&id),
            "job id {id} already submitted"
        );
        self.enqueue(&mut state, id, Box::new(job))?;
        state.next_id = state.next_id.max(id + 1);
        drop(state);
        self.shared.work.notify_one();
        Ok(id)
    }

    fn enqueue(
        &self,
        state: &mut EngineState<R>,
        id: JobId,
        job: JobFn<R>,
    ) -> Result<(), SubmitError> {
        if state.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.queue_depth {
            return Err(SubmitError::QueueFull);
        }
        state.queue.push_back((id, job));
        state.jobs.insert(
            id,
            JobRecord {
                status: JobStatus::Queued,
                cancel: CancelToken::new(),
                checkpoints: Arc::new(AtomicU64::new(0)),
                result: None,
                error: None,
            },
        );
        Ok(())
    }

    /// Requests cancellation: a queued job is removed and marked cancelled
    /// immediately; a running job has its token tripped and reaches
    /// `Cancelled` once the worker observes it. Returns `false` for
    /// unknown or already-terminal jobs.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut state = self.shared.state.lock().unwrap();
        let Some(record) = state.jobs.get(&id) else {
            return false;
        };
        match record.status {
            JobStatus::Queued => {
                state.queue.retain(|(qid, _)| *qid != id);
                let record = state.jobs.get_mut(&id).unwrap();
                record.status = JobStatus::Cancelled;
                state.retire(id, self.shared.retention);
                drop(state);
                self.shared.done.notify_all();
                true
            }
            JobStatus::Running | JobStatus::Checkpointed => {
                record.cancel.cancel();
                true
            }
            _ => false,
        }
    }

    /// The job's observable status without cloning its result, or `None`
    /// for unknown (or evicted) ids.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let state = self.shared.state.lock().unwrap();
        state.jobs.get(&id).map(JobRecord::observable_status)
    }

    /// A point-in-time view of a job, or `None` if the id is unknown.
    pub fn snapshot(&self, id: JobId) -> Option<JobSnapshot<R>>
    where
        R: Clone,
    {
        let state = self.shared.state.lock().unwrap();
        state.jobs.get(&id).map(|record| JobSnapshot {
            id,
            status: record.observable_status(),
            checkpoints: record.checkpoints.load(Ordering::Relaxed),
            result: record.result.clone(),
            error: record.error.clone(),
        })
    }

    /// Blocks until the job reaches a terminal state (returning it) or the
    /// timeout elapses (returning `None`). Unknown ids return `None`
    /// immediately.
    pub fn wait_terminal(&self, id: JobId, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap();
        loop {
            let status = state.jobs.get(&id)?.status;
            if status.is_terminal() {
                return Some(status);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .shared
                .done
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = guard;
        }
    }

    /// Jobs currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Jobs currently executing on workers.
    pub fn running(&self) -> usize {
        self.shared.state.lock().unwrap().running
    }

    /// Starts graceful shutdown without blocking: rejects further
    /// submissions and marks still-queued jobs cancelled. Jobs already on
    /// workers keep running; follow with [`JobEngine::shutdown`] to drain
    /// and join them. Idempotent.
    pub fn begin_shutdown(&self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutting_down = true;
            let dequeued: Vec<JobId> = state.queue.drain(..).map(|(id, _)| id).collect();
            for id in dequeued {
                if let Some(record) = state.jobs.get_mut(&id) {
                    record.status = JobStatus::Cancelled;
                    state.retire(id, self.shared.retention);
                }
            }
        }
        self.shared.work.notify_all();
        self.shared.done.notify_all();
    }

    /// Graceful shutdown: [`JobEngine::begin_shutdown`], then drains jobs
    /// already on workers and joins the pool. Idempotent; also invoked by
    /// `Drop`.
    pub fn shutdown(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            handle.join().expect("job worker panicked");
        }
    }
}

impl<R: Send + 'static> Drop for JobEngine<R> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<R: Send + 'static>(shared: &EngineShared<R>) {
    loop {
        let (id, job, ctx) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some((id, job)) = state.queue.pop_front() {
                    let record = state.jobs.get_mut(&id).expect("queued job has a record");
                    record.status = JobStatus::Running;
                    state.running += 1;
                    let record = &state.jobs[&id];
                    let ctx = JobCtx {
                        id,
                        cancel: record.cancel.clone(),
                        checkpoints: Arc::clone(&record.checkpoints),
                    };
                    break (id, job, ctx);
                }
                if state.shutting_down {
                    return;
                }
                state = shared.work.wait(state).unwrap();
            }
        };

        let outcome = match catch_unwind(AssertUnwindSafe(|| job(&ctx))) {
            Ok(outcome) => outcome,
            Err(payload) => JobOutcome::Failed(format!(
                "job panicked: {}",
                payload_message(payload.as_ref())
            )),
        };

        let mut state = shared.state.lock().unwrap();
        state.running -= 1;
        let record = state.jobs.get_mut(&id).expect("running job has a record");
        match outcome {
            JobOutcome::Done(result) => {
                record.status = JobStatus::Done;
                record.result = Some(result);
            }
            JobOutcome::Cancelled => record.status = JobStatus::Cancelled,
            JobOutcome::Failed(reason) => {
                record.status = JobStatus::Failed;
                record.error = Some(reason);
            }
        }
        state.retire(id, shared.retention);
        drop(state);
        shared.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    const WAIT: Duration = Duration::from_secs(20);

    #[test]
    fn jobs_complete_with_results() {
        let engine: JobEngine<u64> = JobEngine::new(2, 8);
        let ids: Vec<JobId> = (0..5)
            .map(|k| engine.submit(move |_| JobOutcome::Done(k * k)).unwrap())
            .collect();
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(engine.wait_terminal(*id, WAIT), Some(JobStatus::Done));
            let snap = engine.snapshot(*id).unwrap();
            assert_eq!(snap.result, Some((k * k) as u64));
            assert_eq!(snap.error, None);
        }
    }

    #[test]
    fn queue_capacity_is_enforced() {
        // One worker, blocked on a gate: the queue fills behind it.
        let engine: JobEngine<()> = JobEngine::new(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let blocker = engine
            .submit(move |_| {
                started_tx.send(()).unwrap();
                gate_rx.recv().ok();
                JobOutcome::Done(())
            })
            .unwrap();
        started_rx.recv_timeout(WAIT).unwrap();
        let a = engine.submit(|_| JobOutcome::Done(())).unwrap();
        let b = engine.submit(|_| JobOutcome::Done(())).unwrap();
        assert_eq!(
            engine.submit(|_| JobOutcome::Done(())).unwrap_err(),
            SubmitError::QueueFull
        );
        gate_tx.send(()).unwrap();
        for id in [blocker, a, b] {
            assert_eq!(engine.wait_terminal(id, WAIT), Some(JobStatus::Done));
        }
        // Capacity frees up once the queue drains.
        let c = engine.submit(|_| JobOutcome::Done(())).unwrap();
        assert_eq!(engine.wait_terminal(c, WAIT), Some(JobStatus::Done));
    }

    #[test]
    fn queued_jobs_cancel_immediately() {
        let engine: JobEngine<()> = JobEngine::new(1, 8);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let blocker = engine
            .submit(move |_| {
                started_tx.send(()).unwrap();
                gate_rx.recv().ok();
                JobOutcome::Done(())
            })
            .unwrap();
        started_rx.recv_timeout(WAIT).unwrap();
        let queued = engine.submit(|_| JobOutcome::Done(())).unwrap();
        assert!(engine.cancel(queued));
        assert_eq!(
            engine.snapshot(queued).unwrap().status,
            JobStatus::Cancelled
        );
        // A terminal job cannot be cancelled again.
        assert!(!engine.cancel(queued));
        gate_tx.send(()).unwrap();
        assert_eq!(engine.wait_terminal(blocker, WAIT), Some(JobStatus::Done));
    }

    #[test]
    fn running_jobs_observe_their_token() {
        let engine: JobEngine<u32> = JobEngine::new(1, 4);
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let id = engine
            .submit(move |ctx| {
                started_tx.send(()).unwrap();
                while !ctx.cancel.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                JobOutcome::Cancelled
            })
            .unwrap();
        started_rx.recv_timeout(WAIT).unwrap();
        assert!(engine.cancel(id));
        assert_eq!(engine.wait_terminal(id, WAIT), Some(JobStatus::Cancelled));
    }

    #[test]
    fn checkpoints_flip_observable_status() {
        let engine: JobEngine<()> = JobEngine::new(1, 4);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (noted_tx, noted_rx) = mpsc::channel::<()>();
        let id = engine
            .submit(move |ctx| {
                ctx.note_checkpoint();
                noted_tx.send(()).unwrap();
                gate_rx.recv().ok();
                JobOutcome::Done(())
            })
            .unwrap();
        noted_rx.recv_timeout(WAIT).unwrap();
        let snap = engine.snapshot(id).unwrap();
        assert_eq!(snap.status, JobStatus::Checkpointed);
        assert_eq!(snap.checkpoints, 1);
        gate_tx.send(()).unwrap();
        assert_eq!(engine.wait_terminal(id, WAIT), Some(JobStatus::Done));
        assert_eq!(engine.snapshot(id).unwrap().status, JobStatus::Done);
    }

    #[test]
    fn panicking_jobs_fail_without_killing_workers() {
        let engine: JobEngine<()> = JobEngine::new(1, 4);
        let bad = engine
            .submit(|_| -> JobOutcome<()> { panic!("solver diverged") })
            .unwrap();
        assert_eq!(engine.wait_terminal(bad, WAIT), Some(JobStatus::Failed));
        let snap = engine.snapshot(bad).unwrap();
        assert!(snap.error.unwrap().contains("solver diverged"));
        // The worker survives and runs the next job.
        let good = engine.submit(|_| JobOutcome::Done(())).unwrap();
        assert_eq!(engine.wait_terminal(good, WAIT), Some(JobStatus::Done));
    }

    #[test]
    fn shutdown_drains_in_flight_and_cancels_queued() {
        let mut engine: JobEngine<u32> = JobEngine::new(1, 8);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let in_flight = engine
            .submit(move |_| {
                started_tx.send(()).unwrap();
                gate_rx.recv().ok();
                JobOutcome::Done(7)
            })
            .unwrap();
        started_rx.recv_timeout(WAIT).unwrap();
        let queued = engine.submit(|_| JobOutcome::Done(8)).unwrap();
        // Begin shutdown while the worker is still gated: the queued job
        // must be cancelled, not raced onto the freed worker.
        engine.begin_shutdown();
        assert_eq!(
            engine.snapshot(queued).unwrap().status,
            JobStatus::Cancelled
        );
        assert_eq!(
            engine.submit(|_| JobOutcome::Done(9)).unwrap_err(),
            SubmitError::ShuttingDown
        );
        gate_tx.send(()).unwrap();
        engine.shutdown();
        assert_eq!(engine.snapshot(in_flight).unwrap().status, JobStatus::Done);
        assert_eq!(engine.snapshot(in_flight).unwrap().result, Some(7));
    }

    #[test]
    fn terminal_records_are_evicted_beyond_the_retention_cap() {
        let engine: JobEngine<u64> = JobEngine::with_retention(1, 8, 2);
        let ids: Vec<JobId> = (0..4)
            .map(|k| {
                let id = engine.submit(move |_| JobOutcome::Done(k)).unwrap();
                // Drain each job before submitting the next so eviction
                // order is deterministic.
                assert_eq!(engine.wait_terminal(id, WAIT), Some(JobStatus::Done));
                id
            })
            .collect();
        // Only the two most recent terminal records survive; evicted ids
        // behave exactly like unknown ids.
        assert!(engine.snapshot(ids[0]).is_none());
        assert!(engine.snapshot(ids[1]).is_none());
        assert_eq!(engine.status(ids[2]), Some(JobStatus::Done));
        assert_eq!(engine.snapshot(ids[3]).unwrap().result, Some(3));
        assert!(!engine.cancel(ids[0]));
        assert_eq!(
            engine.wait_terminal(ids[0], Duration::from_millis(10)),
            None
        );
    }

    #[test]
    fn submit_with_id_keeps_auto_ids_above() {
        let engine: JobEngine<()> = JobEngine::new(1, 8);
        let restored = engine.submit_with_id(41, |_| JobOutcome::Done(())).unwrap();
        assert_eq!(restored, 41);
        let fresh = engine.submit(|_| JobOutcome::Done(())).unwrap();
        assert_eq!(fresh, 42);
        for id in [restored, fresh] {
            assert_eq!(engine.wait_terminal(id, WAIT), Some(JobStatus::Done));
        }
    }

    #[test]
    fn fifo_order_on_a_single_worker() {
        let engine: JobEngine<()> = JobEngine::new(1, 16);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let order = Arc::new(Mutex::new(Vec::new()));
        let blocker = engine
            .submit(move |_| {
                started_tx.send(()).unwrap();
                gate_rx.recv().ok();
                JobOutcome::Done(())
            })
            .unwrap();
        started_rx.recv_timeout(WAIT).unwrap();
        let ids: Vec<JobId> = (0..4)
            .map(|k| {
                let order = Arc::clone(&order);
                engine
                    .submit(move |_| {
                        order.lock().unwrap().push(k);
                        JobOutcome::Done(())
                    })
                    .unwrap()
            })
            .collect();
        gate_tx.send(()).unwrap();
        for id in ids.iter().chain(std::iter::once(&blocker)) {
            assert_eq!(engine.wait_terminal(*id, WAIT), Some(JobStatus::Done));
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }
}
