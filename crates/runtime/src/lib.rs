//! Shared parallel Monte Carlo runtime for the `emgrid` workspace.
//!
//! Both levels of the paper's hierarchical Monte Carlo (Algorithm 1) — the
//! via-array characterization in `emgrid-via` and the power-grid failure
//! simulation in `emgrid-pg` — are embarrassingly parallel over trials, but
//! trials have highly variable cost: each one walks a different-length
//! failure sequence. Static chunking leaves threads idle behind the longest
//! chunk; this crate replaces it with a **work-stealing trial scheduler**
//! built only on `std`:
//!
//! * **Work stealing.** Threads claim trial indices from a shared atomic
//!   counter, so a thread that drew cheap trials immediately picks up more
//!   work instead of waiting on a pre-assigned range.
//! * **Determinism.** Every trial runs on its own RNG derived from
//!   `(seed, trial_index)` via [`emgrid_stats::stream_rng`], and results
//!   are committed in trial order — so the output is **bit-identical for
//!   any thread count**, including the sequential path.
//! * **Streaming statistics.** Each committed trial pushes an observable
//!   (the engines use `ln TTF`) into a Welford accumulator
//!   ([`emgrid_stats::OnlineStats`]), giving an incremental lognormal fit
//!   after any number of trials.
//! * **Early termination.** With an [`EarlyStop`] target, trials run in
//!   deterministic batches and stop once the confidence interval on the
//!   streamed mean is tight enough — so a run burns only the trials its
//!   confidence target needs instead of a fixed budget. Because the
//!   decision is taken at batch boundaries on deterministically merged
//!   statistics, early-stopped runs are also thread-count invariant.
//! * **Diagnosable failures.** A panicking trial is caught, and the panic
//!   is re-raised on the caller's thread with the trial index and original
//!   payload message attached, instead of a bare "worker thread panicked".
//!
//! The scheduler is generic over the trial body; see [`run_trials`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use emgrid_stats::OnlineStats;

pub mod par;
pub use par::{parallel_fill, parallel_map_chunks, parallel_reduce};

/// Early-termination policy: stop once the two-sided confidence interval on
/// the mean of the streamed observable is narrow enough.
///
/// The engines stream `ln TTF`, so `target_half_width` bounds the CI on the
/// fitted lognormal's `mu` — equivalently, the *relative* precision of the
/// fitted median, since the median CI is `exp(mu ± hw)` and
/// `exp(hw) − 1 ≈ hw` for small `hw`. A target of `0.05` therefore means
/// "median known to about ±5%".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    /// Stop when the CI half-width on the streamed mean drops to this.
    pub target_half_width: f64,
    /// Confidence level of the interval (default 0.95).
    pub confidence: f64,
    /// Never stop before this many trials (guards against a lucky narrow
    /// CI from the first handful of samples).
    pub min_trials: usize,
    /// Trials per scheduling batch; the stopping rule is evaluated at batch
    /// boundaries so the decision is deterministic for any thread count.
    pub batch: usize,
}

impl EarlyStop {
    /// A policy with the given CI half-width target and the defaults used
    /// throughout the workspace (95% confidence, 64-trial minimum and
    /// batch).
    ///
    /// # Panics
    ///
    /// Panics unless `target_half_width > 0`.
    pub fn to_half_width(target_half_width: f64) -> Self {
        assert!(
            target_half_width > 0.0,
            "target half-width must be positive"
        );
        EarlyStop {
            target_half_width,
            confidence: 0.95,
            min_trials: 64,
            batch: 64,
        }
    }
}

/// How a [`run_trials`] call executes: thread count plus optional early
/// termination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Number of OS threads claiming trials (1 = run on the caller's
    /// thread, no spawns).
    pub threads: usize,
    /// Optional confidence-based early termination.
    pub early_stop: Option<EarlyStop>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            threads: 1,
            early_stop: None,
        }
    }
}

impl RuntimeConfig {
    /// Single-threaded, fixed-budget execution (the old sequential path).
    pub fn sequential() -> Self {
        RuntimeConfig::default()
    }

    /// Work-stealing execution across `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threaded(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        RuntimeConfig {
            threads,
            early_stop: None,
        }
    }

    /// Adds an early-termination policy.
    pub fn with_early_stop(mut self, early_stop: EarlyStop) -> Self {
        self.early_stop = Some(early_stop);
        self
    }
}

/// Execution telemetry of one [`run_trials`] call: trial counters, timing
/// and the streamed statistics, carried into the engines' result types.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The trial budget the caller asked for.
    pub trials_requested: usize,
    /// Trials actually run (less than requested iff stopped early).
    pub trials_run: usize,
    /// Thread count the run was configured with.
    pub threads: usize,
    /// Whether the early-termination target was reached before the budget.
    pub stopped_early: bool,
    /// Number of scheduling batches executed.
    pub batches: usize,
    /// Wall-clock time spent inside the scheduler (trial execution and
    /// result commit, excluding the caller's setup).
    pub wall: Duration,
    /// Trials executed by each worker thread, indexed by worker — the
    /// work-stealing balance (all zeros except index 0 for sequential
    /// runs). Unlike everything else in the report this depends on
    /// scheduling, so it is telemetry only.
    pub trials_per_thread: Vec<usize>,
    /// Streaming statistics of the observable (the engines stream
    /// `ln TTF`), merged in trial order.
    pub stream: OnlineStats,
}

impl RunReport {
    /// A placeholder report for results constructed directly from samples
    /// (e.g. in tests) rather than by the scheduler.
    pub fn unscheduled(trials: usize) -> Self {
        RunReport {
            trials_requested: trials,
            trials_run: trials,
            threads: 1,
            stopped_early: false,
            batches: 0,
            wall: Duration::ZERO,
            trials_per_thread: Vec::new(),
            stream: OnlineStats::new(),
        }
    }

    /// The achieved CI half-width on the streamed mean at `confidence`.
    pub fn achieved_half_width(&self, confidence: f64) -> f64 {
        self.stream.ci_half_width(confidence)
    }

    /// Trials per second of wall-clock time (0 if the run was too fast to
    /// measure).
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.trials_run as f64 / secs
        } else {
            0.0
        }
    }
}

/// A panic captured from a worker, tagged with the trial that raised it.
struct TrialPanic {
    trial: usize,
    message: String,
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `trials` Monte Carlo trials under `config` and returns the per-trial
/// outputs in trial order, plus a [`RunReport`].
///
/// `trial(t)` must derive all of its randomness from `t` (typically via
/// [`emgrid_stats::stream_rng`]`(seed, t as u64)`): the scheduler guarantees
/// any thread may run any trial, and determinism then follows. `observe`
/// maps each successful trial to the scalar streamed into the early-stop
/// statistics; engines pass `ln TTF`.
///
/// # Errors
///
/// If any trial returns `Err`, the error of the **lowest-indexed** failing
/// trial is returned (deterministic for any thread count). Trials already
/// completed are discarded.
///
/// # Panics
///
/// Panics if `trials == 0`, and re-raises a worker panic on the caller's
/// thread as `"trial <t> panicked: <original message>"`.
pub fn run_trials<T, E, F, O>(
    trials: usize,
    config: &RuntimeConfig,
    trial: F,
    observe: O,
) -> Result<(Vec<T>, RunReport), E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
    O: Fn(&T) -> f64,
{
    assert!(trials > 0, "need at least one trial");
    assert!(config.threads > 0, "need at least one thread");
    let start = Instant::now();
    let batch_size = match config.early_stop {
        Some(es) => es.batch.max(1),
        None => trials,
    };

    let mut outputs: Vec<T> = Vec::with_capacity(trials);
    let mut stream = OnlineStats::new();
    let mut trials_per_thread = vec![0usize; config.threads];
    let mut batches = 0usize;
    let mut stopped_early = false;

    while outputs.len() < trials {
        let batch_start = outputs.len();
        let batch_end = (batch_start + batch_size).min(trials);
        let mut batch = run_batch(batch_start..batch_end, config.threads, &trial)?;
        batches += 1;
        for (worker, count) in batch.per_worker.drain(..).enumerate() {
            trials_per_thread[worker] += count;
        }
        // Commit in trial order: the stream merge (and therefore the
        // stopping decision below) is identical for any thread count.
        batch.outcomes.sort_by_key(|(t, _)| *t);
        for (_, value) in batch.outcomes {
            stream.push(observe(&value));
            outputs.push(value);
        }
        if let Some(es) = config.early_stop {
            if outputs.len() >= es.min_trials
                && outputs.len() < trials
                && stream.ci_half_width(es.confidence) <= es.target_half_width
            {
                stopped_early = true;
                break;
            }
        }
    }

    let report = RunReport {
        trials_requested: trials,
        trials_run: outputs.len(),
        threads: config.threads,
        stopped_early,
        batches,
        wall: start.elapsed(),
        trials_per_thread,
        stream,
    };
    Ok((outputs, report))
}

struct BatchOutcome<T> {
    outcomes: Vec<(usize, T)>,
    per_worker: Vec<usize>,
}

/// Runs one batch of trials with work stealing; returns outcomes in
/// arbitrary order (the caller sorts).
fn run_batch<T, E, F>(
    range: std::ops::Range<usize>,
    threads: usize,
    trial: &F,
) -> Result<BatchOutcome<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let len = range.end - range.start;
    if threads == 1 || len == 1 {
        // Sequential fast path: no spawns, no atomics.
        let mut outcomes = Vec::with_capacity(len);
        for t in range {
            match catch_unwind(AssertUnwindSafe(|| trial(t))) {
                Ok(Ok(v)) => outcomes.push((t, v)),
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    panic!("trial {t} panicked: {}", payload_message(payload.as_ref()))
                }
            }
        }
        let count = outcomes.len();
        let mut per_worker = vec![0usize; threads];
        per_worker[0] = count;
        return Ok(BatchOutcome {
            outcomes,
            per_worker,
        });
    }

    let next = AtomicUsize::new(range.start);
    // Lowest trial index observed to fail (error or panic). Workers skip
    // trials *above* this watermark — fail-fast — but still execute every
    // trial below it, so the lowest-indexed failure is found exactly and
    // the surfaced error is deterministic for any thread count.
    let min_failed = AtomicUsize::new(usize::MAX);
    let workers = threads.min(len);
    struct WorkerResult<T, E> {
        outcomes: Vec<(usize, T)>,
        error: Option<(usize, E)>,
        panic: Option<TrialPanic>,
    }
    let results: Vec<WorkerResult<T, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let min_failed = &min_failed;
                scope.spawn(move || {
                    let mut out = WorkerResult {
                        outcomes: Vec::new(),
                        error: None,
                        panic: None,
                    };
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= range.end {
                            break;
                        }
                        // The claim counter is monotonic, so every trial
                        // below the failure watermark is already claimed by
                        // some worker; anything above it cannot be the
                        // lowest failure and is skipped.
                        if t > min_failed.load(Ordering::Relaxed) {
                            continue;
                        }
                        match catch_unwind(AssertUnwindSafe(|| trial(t))) {
                            Ok(Ok(v)) => out.outcomes.push((t, v)),
                            Ok(Err(e)) => {
                                out.error = Some((t, e));
                                min_failed.fetch_min(t, Ordering::Relaxed);
                                break;
                            }
                            Err(payload) => {
                                out.panic = Some(TrialPanic {
                                    trial: t,
                                    message: payload_message(payload.as_ref()),
                                });
                                min_failed.fetch_min(t, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("runtime worker panics are caught inside"))
            .collect()
    });

    // On failure, workers skip trials above the watermark, so `outcomes`
    // may be partial; the lowest-indexed recorded event is exact and is
    // the one surfaced.
    let mut panic: Option<TrialPanic> = None;
    let mut error: Option<(usize, E)> = None;
    let mut outcomes = Vec::with_capacity(len);
    let mut per_worker = vec![0usize; threads];
    for (w, r) in results.into_iter().enumerate() {
        per_worker[w] = r.outcomes.len();
        outcomes.extend(r.outcomes);
        if let Some(p) = r.panic {
            if panic.as_ref().is_none_or(|q| p.trial < q.trial) {
                panic = Some(p);
            }
        }
        if let Some((t, e)) = r.error {
            if error.as_ref().is_none_or(|(u, _)| t < *u) {
                error = Some((t, e));
            }
        }
    }
    if let Some(p) = panic {
        if error.as_ref().is_none_or(|(t, _)| p.trial < *t) {
            panic!("trial {} panicked: {}", p.trial, p.message);
        }
    }
    if let Some((_, e)) = error {
        return Err(e);
    }
    Ok(BatchOutcome {
        outcomes,
        per_worker,
    })
}

/// [`run_trials`] for trial bodies that cannot fail.
///
/// # Panics
///
/// Same contract as [`run_trials`].
pub fn run_trials_infallible<T, F, O>(
    trials: usize,
    config: &RuntimeConfig,
    trial: F,
    observe: O,
) -> (Vec<T>, RunReport)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    O: Fn(&T) -> f64,
{
    enum Never {}
    let result: Result<_, Never> = run_trials(trials, config, |t| Ok(trial(t)), observe);
    match result {
        Ok(pair) => pair,
        Err(never) => match never {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emgrid_stats::{stream_rng, Rng};

    fn lognormal_trial(seed: u64, t: usize) -> f64 {
        let mut rng = stream_rng(seed, t as u64);
        (1.0 + 0.5 * rng.next_standard_normal()).exp()
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        let run = |threads| {
            run_trials_infallible(
                257,
                &RuntimeConfig::threaded(threads),
                |t| lognormal_trial(9, t),
                |x| x.ln(),
            )
        };
        let (seq, seq_report) = run(1);
        for threads in [2, 4, 8] {
            let (par, report) = run(threads);
            assert_eq!(seq, par, "thread count {threads} changed results");
            assert_eq!(report.trials_run, 257);
            assert_eq!(report.stream, seq_report.stream);
        }
    }

    #[test]
    fn work_is_actually_distributed() {
        let (_, report) = run_trials_infallible(
            400,
            &RuntimeConfig::threaded(4),
            |t| lognormal_trial(1, t),
            |x| x.ln(),
        );
        assert_eq!(report.trials_per_thread.len(), 4);
        assert_eq!(report.trials_per_thread.iter().sum::<usize>(), 400);
        // On a single hardware thread one worker may legitimately drain the
        // whole counter before its siblings are ever scheduled, so only
        // assert a spread where real parallelism exists.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 2 {
            let active = report.trials_per_thread.iter().filter(|&&c| c > 0).count();
            assert!(active >= 2, "only {active} workers ran trials");
        }
    }

    #[test]
    fn early_stop_halts_before_the_budget() {
        // sigma = 0.5: hw(95%) ~ 1.96 * 0.5 / sqrt(n) <= 0.05 at n ~ 385.
        let config = RuntimeConfig::threaded(4).with_early_stop(EarlyStop::to_half_width(0.05));
        let (out, report) =
            run_trials_infallible(100_000, &config, |t| lognormal_trial(5, t), |x| x.ln());
        assert!(report.stopped_early);
        assert_eq!(out.len(), report.trials_run);
        assert!(
            report.trials_run < 2000,
            "ran {} trials for a 0.05 target",
            report.trials_run
        );
        assert!(report.achieved_half_width(0.95) <= 0.05);
        assert!(report.trials_run >= 64);
    }

    #[test]
    fn early_stop_is_thread_count_invariant() {
        let run = |threads| {
            let config =
                RuntimeConfig::threaded(threads).with_early_stop(EarlyStop::to_half_width(0.08));
            run_trials_infallible(50_000, &config, |t| lognormal_trial(6, t), |x| x.ln())
        };
        let (seq, seq_report) = run(1);
        for threads in [2, 8] {
            let (par, report) = run(threads);
            assert_eq!(seq, par);
            assert_eq!(report.trials_run, seq_report.trials_run);
            assert_eq!(report.stopped_early, seq_report.stopped_early);
        }
    }

    #[test]
    fn early_stop_respects_min_trials() {
        let es = EarlyStop {
            target_half_width: 1e9, // trivially satisfied immediately
            confidence: 0.95,
            min_trials: 192,
            batch: 64,
        };
        let config = RuntimeConfig::sequential().with_early_stop(es);
        let (_, report) =
            run_trials_infallible(10_000, &config, |t| lognormal_trial(7, t), |x| x.ln());
        assert!(report.stopped_early);
        assert_eq!(report.trials_run, 192);
    }

    #[test]
    fn exhausting_the_budget_is_not_early_stop() {
        let config = RuntimeConfig::sequential().with_early_stop(EarlyStop::to_half_width(1e-9));
        let (_, report) =
            run_trials_infallible(100, &config, |t| lognormal_trial(8, t), |x| x.ln());
        assert!(!report.stopped_early);
        assert_eq!(report.trials_run, 100);
    }

    #[test]
    fn errors_pick_the_lowest_trial_index() {
        for threads in [1, 4] {
            let config = RuntimeConfig::threaded(threads);
            let result: Result<(Vec<f64>, _), usize> = run_trials(
                100,
                &config,
                |t| if t % 7 == 3 { Err(t) } else { Ok(t as f64) },
                |&x| x,
            );
            assert_eq!(result.err(), Some(3), "threads = {threads}");
        }
    }

    #[test]
    fn worker_panics_carry_trial_index_and_message() {
        for threads in [1, 4] {
            let config = RuntimeConfig::threaded(threads);
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                run_trials_infallible(
                    64,
                    &config,
                    |t| {
                        if t == 41 {
                            panic!("bad trial state: remaining life NaN");
                        }
                        t as f64
                    },
                    |&x| x,
                )
            }));
            let payload = caught.expect_err("must panic");
            let message = payload_message(payload.as_ref());
            assert!(
                message.contains("trial 41") && message.contains("remaining life NaN"),
                "threads {threads}: got {message:?}"
            );
        }
    }

    #[test]
    fn report_counters_are_consistent() {
        let (out, report) = run_trials_infallible(
            130,
            &RuntimeConfig::threaded(3),
            |t| lognormal_trial(2, t),
            |x| x.ln(),
        );
        assert_eq!(report.trials_requested, 130);
        assert_eq!(report.trials_run, 130);
        assert_eq!(out.len(), 130);
        assert_eq!(report.batches, 1);
        assert_eq!(report.stream.count(), 130);
        assert!(report.wall >= Duration::ZERO);
    }

    #[test]
    fn single_trial_runs_inline() {
        let (out, report) = run_trials_infallible(
            1,
            &RuntimeConfig::threaded(8),
            |t| lognormal_trial(3, t),
            |x| x.ln(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(report.trials_per_thread.iter().sum::<usize>(), 1);
    }
}
