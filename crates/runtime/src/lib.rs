//! Shared parallel Monte Carlo runtime for the `emgrid` workspace.
//!
//! Both levels of the paper's hierarchical Monte Carlo (Algorithm 1) — the
//! via-array characterization in `emgrid-via` and the power-grid failure
//! simulation in `emgrid-pg` — are embarrassingly parallel over trials, but
//! trials have highly variable cost: each one walks a different-length
//! failure sequence. Static chunking leaves threads idle behind the longest
//! chunk; this crate replaces it with a **work-stealing trial scheduler**
//! built only on `std`:
//!
//! * **Work stealing.** Threads claim trial indices from a shared atomic
//!   counter, so a thread that drew cheap trials immediately picks up more
//!   work instead of waiting on a pre-assigned range.
//! * **Determinism.** Every trial runs on its own RNG derived from
//!   `(seed, trial_index)` via [`emgrid_stats::stream_rng`], and results
//!   are committed in trial order — so the output is **bit-identical for
//!   any thread count**, including the sequential path.
//! * **Streaming statistics.** Each committed trial pushes an observable
//!   (the engines use `ln TTF`) into a Welford accumulator
//!   ([`emgrid_stats::OnlineStats`]), giving an incremental lognormal fit
//!   after any number of trials.
//! * **Early termination.** With an [`EarlyStop`] target, trials run in
//!   deterministic batches and stop once the confidence interval on the
//!   streamed mean is tight enough — so a run burns only the trials its
//!   confidence target needs instead of a fixed budget. Because the
//!   decision is taken at batch boundaries on deterministically merged
//!   statistics, early-stopped runs are also thread-count invariant.
//! * **Diagnosable failures.** A panicking trial is caught, and the panic
//!   is re-raised on the caller's thread with the trial index and original
//!   payload message attached, instead of a bare "worker thread panicked".
//!
//! The scheduler is generic over the trial body; see [`run_trials`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use emgrid_stats::OnlineStats;

pub mod jobs;
pub mod obs;
pub mod par;
pub use jobs::{CancelToken, JobCtx, JobEngine, JobId, JobOutcome, JobStatus, SubmitError};
pub use par::{parallel_chunks_mut, parallel_fill, parallel_map_chunks, parallel_reduce};
// The stream-derivation scheme the scheduler's determinism contract rests
// on, re-exported so trial bodies can split one trial's randomness into
// named, independent sub-streams (geometry / field / void draws) without
// depending on `emgrid-stats` directly.
pub use emgrid_stats::{stream_rng, substream_rng};

/// Early-termination policy: stop once the two-sided confidence interval on
/// the mean of the streamed observable is narrow enough.
///
/// The engines stream `ln TTF`, so `target_half_width` bounds the CI on the
/// fitted lognormal's `mu` — equivalently, the *relative* precision of the
/// fitted median, since the median CI is `exp(mu ± hw)` and
/// `exp(hw) − 1 ≈ hw` for small `hw`. A target of `0.05` therefore means
/// "median known to about ±5%".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    /// Stop when the CI half-width on the streamed mean drops to this.
    pub target_half_width: f64,
    /// Confidence level of the interval (default 0.95).
    pub confidence: f64,
    /// Never stop before this many trials (guards against a lucky narrow
    /// CI from the first handful of samples).
    pub min_trials: usize,
    /// Trials per scheduling batch; the stopping rule is evaluated at batch
    /// boundaries so the decision is deterministic for any thread count.
    pub batch: usize,
}

impl EarlyStop {
    /// A policy with the given CI half-width target and the defaults used
    /// throughout the workspace (95% confidence, 64-trial minimum and
    /// batch).
    ///
    /// # Panics
    ///
    /// Panics unless `target_half_width > 0`.
    pub fn to_half_width(target_half_width: f64) -> Self {
        assert!(
            target_half_width > 0.0,
            "target half-width must be positive"
        );
        EarlyStop {
            target_half_width,
            confidence: 0.95,
            min_trials: 64,
            batch: 64,
        }
    }
}

/// How a [`run_trials`] call executes: thread count plus optional early
/// termination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Number of OS threads claiming trials (1 = run on the caller's
    /// thread, no spawns).
    pub threads: usize,
    /// Optional confidence-based early termination.
    pub early_stop: Option<EarlyStop>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            threads: 1,
            early_stop: None,
        }
    }
}

impl RuntimeConfig {
    /// Single-threaded, fixed-budget execution (the old sequential path).
    pub fn sequential() -> Self {
        RuntimeConfig::default()
    }

    /// Work-stealing execution across `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threaded(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        RuntimeConfig {
            threads,
            early_stop: None,
        }
    }

    /// Adds an early-termination policy.
    pub fn with_early_stop(mut self, early_stop: EarlyStop) -> Self {
        self.early_stop = Some(early_stop);
        self
    }
}

/// Execution telemetry of one [`run_trials`] call: trial counters, timing
/// and the streamed statistics, carried into the engines' result types.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The trial budget the caller asked for.
    pub trials_requested: usize,
    /// Trials actually run (less than requested iff stopped early).
    pub trials_run: usize,
    /// Thread count the run was configured with.
    pub threads: usize,
    /// Whether the early-termination target was reached before the budget.
    pub stopped_early: bool,
    /// Trials restored from a checkpoint instead of executed (0 for fresh
    /// runs; see [`TrialSession::resume`]).
    pub resumed_from: usize,
    /// Whether the run was interrupted by a [`CancelToken`] before reaching
    /// the budget or the early-stop target. A cancelled run still commits a
    /// deterministic prefix of trials, suitable for checkpointing.
    pub cancelled: bool,
    /// Number of scheduling batches executed.
    pub batches: usize,
    /// Wall-clock time spent inside the scheduler (trial execution and
    /// result commit, excluding the caller's setup).
    pub wall: Duration,
    /// Trials executed by each worker thread, indexed by worker — the
    /// work-stealing balance (all zeros except index 0 for sequential
    /// runs). Unlike everything else in the report this depends on
    /// scheduling, so it is telemetry only.
    pub trials_per_thread: Vec<usize>,
    /// Streaming statistics of the observable (the engines stream
    /// `ln TTF`), merged in trial order.
    pub stream: OnlineStats,
}

impl RunReport {
    /// A placeholder report for results constructed directly from samples
    /// (e.g. in tests) rather than by the scheduler.
    pub fn unscheduled(trials: usize) -> Self {
        RunReport {
            trials_requested: trials,
            trials_run: trials,
            threads: 1,
            stopped_early: false,
            resumed_from: 0,
            cancelled: false,
            batches: 0,
            wall: Duration::ZERO,
            trials_per_thread: Vec::new(),
            stream: OnlineStats::new(),
        }
    }

    /// The achieved CI half-width on the streamed mean at `confidence`.
    pub fn achieved_half_width(&self, confidence: f64) -> f64 {
        self.stream.ci_half_width(confidence)
    }

    /// Trials per second of wall-clock time (0 if the run was too fast to
    /// measure).
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.trials_run as f64 / secs
        } else {
            0.0
        }
    }
}

/// A panic captured from a worker, tagged with the trial that raised it.
struct TrialPanic {
    trial: usize,
    message: String,
}

pub(crate) fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `trials` Monte Carlo trials under `config` and returns the per-trial
/// outputs in trial order, plus a [`RunReport`].
///
/// `trial(t)` must derive all of its randomness from `t` (typically via
/// [`emgrid_stats::stream_rng`]`(seed, t as u64)`): the scheduler guarantees
/// any thread may run any trial, and determinism then follows. `observe`
/// maps each successful trial to the scalar streamed into the early-stop
/// statistics; engines pass `ln TTF`.
///
/// # Errors
///
/// If any trial returns `Err`, the error of the **lowest-indexed** failing
/// trial is returned (deterministic for any thread count). Trials already
/// completed are discarded.
///
/// # Panics
///
/// Panics if `trials == 0`, and re-raises a worker panic on the caller's
/// thread as `"trial <t> panicked: <original message>"`.
pub fn run_trials<T, E, F, O>(
    trials: usize,
    config: &RuntimeConfig,
    trial: F,
    observe: O,
) -> Result<(Vec<T>, RunReport), E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
    O: Fn(&T) -> f64,
{
    run_trials_session(trials, config, TrialSession::default(), trial, observe)
}

/// Restored state of a resumable Monte Carlo session: the committed trial
/// outputs (a strict prefix of the trial sequence, in trial order) and the
/// streamed statistics accumulated over exactly those trials.
#[derive(Debug, Clone)]
pub struct SessionState<T> {
    /// Outputs of trials `0..outputs.len()`, in trial order.
    pub outputs: Vec<T>,
    /// The observable stream over those outputs (restored bit-exactly via
    /// [`OnlineStats::from_raw_parts`]).
    pub stream: OnlineStats,
}

/// Checkpoint/cancellation controls for one [`run_trials_session`] call.
///
/// The default session is a plain fresh run (what [`run_trials`] passes).
/// With `resume`, the scheduler skips the already-committed prefix and
/// continues from the watermark — because every trial derives its
/// randomness from `(seed, trial_index)` alone, a resumed run commits the
/// exact bits an uninterrupted run would have. With `cancel`, workers stop
/// claiming trials as soon as the token trips and the call returns the
/// committed prefix with [`RunReport::cancelled`] set. `on_checkpoint`
/// fires at batch boundaries every `checkpoint_every` committed trials
/// (and once more on cancellation), receiving the full committed prefix
/// and its stream.
pub struct TrialSession<'a, T> {
    /// Prior session state to resume from (`None` = fresh run).
    pub resume: Option<SessionState<T>>,
    /// Cooperative cancellation token checked between trial claims.
    pub cancel: Option<&'a CancelToken>,
    /// Commit interval (in trials) between `on_checkpoint` calls;
    /// 0 disables periodic checkpointing.
    pub checkpoint_every: usize,
    /// Callback receiving `(committed outputs, stream)` snapshots.
    #[allow(clippy::type_complexity)]
    pub on_checkpoint: Option<&'a mut (dyn FnMut(&[T], &OnlineStats) + 'a)>,
}

impl<T> Default for TrialSession<'_, T> {
    fn default() -> Self {
        TrialSession {
            resume: None,
            cancel: None,
            checkpoint_every: 0,
            on_checkpoint: None,
        }
    }
}

/// [`run_trials`] with resume/checkpoint/cancellation controls.
///
/// Scheduling batches are aligned to absolute trial indices (batch `k`
/// covers trials `k·B..(k+1)·B`), so early-stop decisions are evaluated at
/// the same watermarks whether or not the run was interrupted and resumed
/// in between — a resumed run reproduces an uninterrupted run bit for bit,
/// including its early-termination point.
///
/// # Errors
///
/// As [`run_trials`]; a checkpoint is *not* written for a failing batch.
///
/// # Panics
///
/// As [`run_trials`], plus if the resume state is inconsistent (more
/// outputs than the trial budget, or a stream count that does not match
/// the output count).
pub fn run_trials_session<T, E, F, O>(
    trials: usize,
    config: &RuntimeConfig,
    mut session: TrialSession<'_, T>,
    trial: F,
    observe: O,
) -> Result<(Vec<T>, RunReport), E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
    O: Fn(&T) -> f64,
{
    assert!(trials > 0, "need at least one trial");
    assert!(config.threads > 0, "need at least one thread");
    let start = Instant::now();
    let _mc_span = obs::span("mc");
    // Batch size: the early-stop decision grid when early stopping is on
    // (so the stopping rule is invariant to checkpoint cadence), otherwise
    // the checkpoint cadence, otherwise one batch for the whole budget.
    let batch_size = match (config.early_stop, session.checkpoint_every) {
        (Some(es), _) => es.batch.max(1),
        (None, every) if every > 0 => every,
        (None, _) => trials,
    };

    let (mut outputs, mut stream) = match session.resume.take() {
        Some(state) => (state.outputs, state.stream),
        None => (Vec::with_capacity(trials), OnlineStats::new()),
    };
    assert!(
        outputs.len() <= trials,
        "resume state has {} outputs for a {trials}-trial budget",
        outputs.len()
    );
    assert_eq!(
        outputs.len() as u64,
        stream.count(),
        "resume stream count does not match the committed outputs"
    );
    let resumed_from = outputs.len();
    let mut last_checkpoint = resumed_from;
    let mut trials_per_thread = vec![0usize; config.threads];
    let mut batches = 0usize;
    let mut stopped_early = false;
    let mut cancelled = false;
    let cancel_flag = session.cancel.map(CancelToken::flag);

    while outputs.len() < trials {
        // The stopping rule is evaluated at the top of the loop (at
        // batch-aligned watermarks), so a run resumed exactly at a
        // would-have-stopped watermark stops there too instead of
        // overrunning the uninterrupted run's termination point.
        if let Some(es) = config.early_stop {
            if outputs.len() >= es.min_trials
                && outputs.len() % batch_size == 0
                && stream.ci_half_width(es.confidence) <= es.target_half_width
            {
                stopped_early = true;
                break;
            }
        }
        if cancel_flag.is_some_and(|c| c.load(Ordering::Relaxed)) {
            cancelled = true;
            break;
        }
        let batch_start = outputs.len();
        // Align batch ends to absolute multiples of the batch size so a
        // resumed run re-joins the uninterrupted run's decision grid.
        let batch_end = ((batch_start / batch_size + 1) * batch_size).min(trials);
        let mut batch = run_batch(batch_start..batch_end, config.threads, cancel_flag, &trial)?;
        batches += 1;
        for (worker, count) in batch.per_worker.drain(..).enumerate() {
            trials_per_thread[worker] += count;
        }
        // Commit in trial order: the stream merge (and therefore the
        // stopping decision above) is identical for any thread count. A
        // cancelled batch may have holes; only the contiguous prefix is
        // committed (the rest is re-run on resume).
        batch.outcomes.sort_by_key(|(t, _)| *t);
        for (t, value) in batch.outcomes {
            if t != outputs.len() {
                break;
            }
            stream.push(observe(&value));
            outputs.push(value);
        }
        if session.checkpoint_every > 0
            && outputs.len() - last_checkpoint >= session.checkpoint_every
        {
            if let Some(cb) = session.on_checkpoint.as_mut() {
                commit_checkpoint(cb, &outputs, &stream);
            }
            last_checkpoint = outputs.len();
        }
        if batch.interrupted {
            cancelled = true;
            break;
        }
    }

    // A cancelled run checkpoints whatever was committed after the last
    // periodic checkpoint, so resumption loses nothing.
    if cancelled && outputs.len() > last_checkpoint {
        if let Some(cb) = session.on_checkpoint.as_mut() {
            commit_checkpoint(cb, &outputs, &stream);
        }
    }

    obs::counter("emgrid_mc_runs_total", "Monte Carlo runs completed.").inc();
    obs::counter(
        "emgrid_mc_trials_total",
        "Monte Carlo trials executed (resumed trials excluded).",
    )
    .add((outputs.len() - resumed_from) as u64);
    if stopped_early {
        obs::counter(
            "emgrid_mc_early_stops_total",
            "MC runs terminated early by the CI half-width rule.",
        )
        .inc();
    }
    if cancelled {
        obs::counter(
            "emgrid_mc_cancelled_runs_total",
            "MC runs interrupted by cancellation.",
        )
        .inc();
    }

    let report = RunReport {
        trials_requested: trials,
        trials_run: outputs.len(),
        threads: config.threads,
        stopped_early,
        resumed_from,
        cancelled,
        batches,
        wall: start.elapsed(),
        trials_per_thread,
        stream,
    };
    Ok((outputs, report))
}

/// Runs one checkpoint callback under a span and records its commit
/// latency (serialize + persist) in the global histogram.
fn commit_checkpoint<T>(
    cb: &mut (dyn FnMut(&[T], &OnlineStats) + '_),
    outputs: &[T],
    stream: &OnlineStats,
) {
    let _span = obs::span("checkpoint");
    let started = Instant::now();
    cb(outputs, stream);
    obs::histogram(
        "emgrid_mc_checkpoint_commit_seconds",
        "Wall time to commit one Monte Carlo checkpoint.",
    )
    .observe_duration(started.elapsed());
}

struct BatchOutcome<T> {
    outcomes: Vec<(usize, T)>,
    per_worker: Vec<usize>,
    interrupted: bool,
}

/// Runs one batch of trials with work stealing; returns outcomes in
/// arbitrary order (the caller sorts). Workers poll `cancel` between trial
/// claims and stop claiming once it trips; `interrupted` reports whether
/// that happened (the batch may then have holes).
fn run_batch<T, E, F>(
    range: std::ops::Range<usize>,
    threads: usize,
    cancel: Option<&AtomicBool>,
    trial: &F,
) -> Result<BatchOutcome<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let len = range.end - range.start;
    if threads == 1 || len == 1 {
        // Sequential fast path: no spawns, no atomics.
        let mut outcomes = Vec::with_capacity(len);
        let mut interrupted = false;
        for t in range {
            if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                interrupted = true;
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| trial(t))) {
                Ok(Ok(v)) => outcomes.push((t, v)),
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    panic!("trial {t} panicked: {}", payload_message(payload.as_ref()))
                }
            }
        }
        let count = outcomes.len();
        let mut per_worker = vec![0usize; threads];
        per_worker[0] = count;
        return Ok(BatchOutcome {
            outcomes,
            per_worker,
            interrupted,
        });
    }

    let next = AtomicUsize::new(range.start);
    // Lowest trial index observed to fail (error or panic). Workers skip
    // trials *above* this watermark — fail-fast — but still execute every
    // trial below it, so the lowest-indexed failure is found exactly and
    // the surfaced error is deterministic for any thread count.
    let min_failed = AtomicUsize::new(usize::MAX);
    let workers = threads.min(len);
    struct WorkerResult<T, E> {
        outcomes: Vec<(usize, T)>,
        error: Option<(usize, E)>,
        panic: Option<TrialPanic>,
    }
    let results: Vec<WorkerResult<T, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let min_failed = &min_failed;
                scope.spawn(move || {
                    let mut out = WorkerResult {
                        outcomes: Vec::new(),
                        error: None,
                        panic: None,
                    };
                    loop {
                        if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                            break;
                        }
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= range.end {
                            break;
                        }
                        // The claim counter is monotonic, so every trial
                        // below the failure watermark is already claimed by
                        // some worker; anything above it cannot be the
                        // lowest failure and is skipped.
                        if t > min_failed.load(Ordering::Relaxed) {
                            continue;
                        }
                        match catch_unwind(AssertUnwindSafe(|| trial(t))) {
                            Ok(Ok(v)) => out.outcomes.push((t, v)),
                            Ok(Err(e)) => {
                                out.error = Some((t, e));
                                min_failed.fetch_min(t, Ordering::Relaxed);
                                break;
                            }
                            Err(payload) => {
                                out.panic = Some(TrialPanic {
                                    trial: t,
                                    message: payload_message(payload.as_ref()),
                                });
                                min_failed.fetch_min(t, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("runtime worker panics are caught inside"))
            .collect()
    });

    // On failure, workers skip trials above the watermark, so `outcomes`
    // may be partial; the lowest-indexed recorded event is exact and is
    // the one surfaced.
    let mut panic: Option<TrialPanic> = None;
    let mut error: Option<(usize, E)> = None;
    let mut outcomes = Vec::with_capacity(len);
    let mut per_worker = vec![0usize; threads];
    for (w, r) in results.into_iter().enumerate() {
        per_worker[w] = r.outcomes.len();
        outcomes.extend(r.outcomes);
        if let Some(p) = r.panic {
            if panic.as_ref().is_none_or(|q| p.trial < q.trial) {
                panic = Some(p);
            }
        }
        if let Some((t, e)) = r.error {
            if error.as_ref().is_none_or(|(u, _)| t < *u) {
                error = Some((t, e));
            }
        }
    }
    if let Some(p) = panic {
        if error.as_ref().is_none_or(|(t, _)| p.trial < *t) {
            panic!("trial {} panicked: {}", p.trial, p.message);
        }
    }
    if let Some((_, e)) = error {
        return Err(e);
    }
    Ok(BatchOutcome {
        outcomes,
        per_worker,
        interrupted: cancel.is_some_and(|c| c.load(Ordering::Relaxed)),
    })
}

/// [`run_trials`] for trial bodies that cannot fail.
///
/// # Panics
///
/// Same contract as [`run_trials`].
pub fn run_trials_infallible<T, F, O>(
    trials: usize,
    config: &RuntimeConfig,
    trial: F,
    observe: O,
) -> (Vec<T>, RunReport)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    O: Fn(&T) -> f64,
{
    enum Never {}
    let result: Result<_, Never> = run_trials(trials, config, |t| Ok(trial(t)), observe);
    match result {
        Ok(pair) => pair,
        Err(never) => match never {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emgrid_stats::{stream_rng, Rng};

    fn lognormal_trial(seed: u64, t: usize) -> f64 {
        let mut rng = stream_rng(seed, t as u64);
        (1.0 + 0.5 * rng.next_standard_normal()).exp()
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        let run = |threads| {
            run_trials_infallible(
                257,
                &RuntimeConfig::threaded(threads),
                |t| lognormal_trial(9, t),
                |x| x.ln(),
            )
        };
        let (seq, seq_report) = run(1);
        for threads in [2, 4, 8] {
            let (par, report) = run(threads);
            assert_eq!(seq, par, "thread count {threads} changed results");
            assert_eq!(report.trials_run, 257);
            assert_eq!(report.stream, seq_report.stream);
        }
    }

    #[test]
    fn work_is_actually_distributed() {
        let (_, report) = run_trials_infallible(
            400,
            &RuntimeConfig::threaded(4),
            |t| lognormal_trial(1, t),
            |x| x.ln(),
        );
        assert_eq!(report.trials_per_thread.len(), 4);
        assert_eq!(report.trials_per_thread.iter().sum::<usize>(), 400);
        // On a single hardware thread one worker may legitimately drain the
        // whole counter before its siblings are ever scheduled, so only
        // assert a spread where real parallelism exists.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 2 {
            let active = report.trials_per_thread.iter().filter(|&&c| c > 0).count();
            assert!(active >= 2, "only {active} workers ran trials");
        }
    }

    #[test]
    fn early_stop_halts_before_the_budget() {
        // sigma = 0.5: hw(95%) ~ 1.96 * 0.5 / sqrt(n) <= 0.05 at n ~ 385.
        let config = RuntimeConfig::threaded(4).with_early_stop(EarlyStop::to_half_width(0.05));
        let (out, report) =
            run_trials_infallible(100_000, &config, |t| lognormal_trial(5, t), |x| x.ln());
        assert!(report.stopped_early);
        assert_eq!(out.len(), report.trials_run);
        assert!(
            report.trials_run < 2000,
            "ran {} trials for a 0.05 target",
            report.trials_run
        );
        assert!(report.achieved_half_width(0.95) <= 0.05);
        assert!(report.trials_run >= 64);
    }

    #[test]
    fn early_stop_is_thread_count_invariant() {
        let run = |threads| {
            let config =
                RuntimeConfig::threaded(threads).with_early_stop(EarlyStop::to_half_width(0.08));
            run_trials_infallible(50_000, &config, |t| lognormal_trial(6, t), |x| x.ln())
        };
        let (seq, seq_report) = run(1);
        for threads in [2, 8] {
            let (par, report) = run(threads);
            assert_eq!(seq, par);
            assert_eq!(report.trials_run, seq_report.trials_run);
            assert_eq!(report.stopped_early, seq_report.stopped_early);
        }
    }

    #[test]
    fn early_stop_respects_min_trials() {
        let es = EarlyStop {
            target_half_width: 1e9, // trivially satisfied immediately
            confidence: 0.95,
            min_trials: 192,
            batch: 64,
        };
        let config = RuntimeConfig::sequential().with_early_stop(es);
        let (_, report) =
            run_trials_infallible(10_000, &config, |t| lognormal_trial(7, t), |x| x.ln());
        assert!(report.stopped_early);
        assert_eq!(report.trials_run, 192);
    }

    #[test]
    fn exhausting_the_budget_is_not_early_stop() {
        let config = RuntimeConfig::sequential().with_early_stop(EarlyStop::to_half_width(1e-9));
        let (_, report) =
            run_trials_infallible(100, &config, |t| lognormal_trial(8, t), |x| x.ln());
        assert!(!report.stopped_early);
        assert_eq!(report.trials_run, 100);
    }

    #[test]
    fn errors_pick_the_lowest_trial_index() {
        for threads in [1, 4] {
            let config = RuntimeConfig::threaded(threads);
            let result: Result<(Vec<f64>, _), usize> = run_trials(
                100,
                &config,
                |t| if t % 7 == 3 { Err(t) } else { Ok(t as f64) },
                |&x| x,
            );
            assert_eq!(result.err(), Some(3), "threads = {threads}");
        }
    }

    #[test]
    fn worker_panics_carry_trial_index_and_message() {
        for threads in [1, 4] {
            let config = RuntimeConfig::threaded(threads);
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                run_trials_infallible(
                    64,
                    &config,
                    |t| {
                        if t == 41 {
                            panic!("bad trial state: remaining life NaN");
                        }
                        t as f64
                    },
                    |&x| x,
                )
            }));
            let payload = caught.expect_err("must panic");
            let message = payload_message(payload.as_ref());
            assert!(
                message.contains("trial 41") && message.contains("remaining life NaN"),
                "threads {threads}: got {message:?}"
            );
        }
    }

    #[test]
    fn report_counters_are_consistent() {
        let (out, report) = run_trials_infallible(
            130,
            &RuntimeConfig::threaded(3),
            |t| lognormal_trial(2, t),
            |x| x.ln(),
        );
        assert_eq!(report.trials_requested, 130);
        assert_eq!(report.trials_run, 130);
        assert_eq!(out.len(), 130);
        assert_eq!(report.batches, 1);
        assert_eq!(report.stream.count(), 130);
        assert!(report.wall >= Duration::ZERO);
    }

    fn session_run(
        trials: usize,
        config: &RuntimeConfig,
        session: TrialSession<'_, f64>,
    ) -> (Vec<f64>, RunReport) {
        enum Never {}
        let result: Result<_, Never> = run_trials_session(
            trials,
            config,
            session,
            |t| Ok(lognormal_trial(21, t)),
            |x| x.ln(),
        );
        match result {
            Ok(pair) => pair,
            Err(never) => match never {},
        }
    }

    #[test]
    fn resumed_session_matches_uninterrupted_run() {
        for threads in [1, 4] {
            let config = RuntimeConfig::threaded(threads);
            let (whole, whole_report) = session_run(300, &config, TrialSession::default());

            // Capture a mid-run checkpoint, then resume from it.
            let mut snapshot: Option<(Vec<f64>, OnlineStats)> = None;
            let mut on_checkpoint = |outputs: &[f64], stream: &OnlineStats| {
                if snapshot.is_none() {
                    snapshot = Some((outputs.to_vec(), *stream));
                }
            };
            let session = TrialSession {
                checkpoint_every: 64,
                on_checkpoint: Some(&mut on_checkpoint),
                ..TrialSession::default()
            };
            session_run(300, &config, session);
            let (outputs, stream) = snapshot.expect("checkpoint fired");
            assert_eq!(outputs.len(), 64);

            let resumed_from = outputs.len();
            let (resumed, report) = session_run(
                300,
                &config,
                TrialSession {
                    resume: Some(SessionState { outputs, stream }),
                    ..TrialSession::default()
                },
            );
            assert_eq!(resumed, whole, "threads {threads}");
            assert_eq!(report.stream, whole_report.stream);
            assert_eq!(report.resumed_from, resumed_from);
            assert!(!report.cancelled);
        }
    }

    #[test]
    fn resumed_session_reproduces_early_stop_decision() {
        // Including a resume that lands exactly on the watermark where the
        // uninterrupted run stops: the resumed run must also stop there.
        let config = RuntimeConfig::threaded(2).with_early_stop(EarlyStop::to_half_width(0.08));
        let (whole, whole_report) = session_run(50_000, &config, TrialSession::default());
        assert!(whole_report.stopped_early);
        for cut in [64, whole.len() - 64, whole.len()] {
            let outputs = whole[..cut].to_vec();
            let mut stream = OnlineStats::new();
            for x in &outputs {
                stream.push(x.ln());
            }
            let (resumed, report) = session_run(
                50_000,
                &config,
                TrialSession {
                    resume: Some(SessionState { outputs, stream }),
                    ..TrialSession::default()
                },
            );
            assert_eq!(resumed, whole, "cut {cut}");
            assert_eq!(report.trials_run, whole_report.trials_run);
            assert!(report.stopped_early);
            assert_eq!(report.stream, whole_report.stream);
        }
    }

    #[test]
    fn checkpoints_fire_at_the_requested_cadence() {
        let mut watermarks = Vec::new();
        let mut on_checkpoint = |outputs: &[f64], stream: &OnlineStats| {
            assert_eq!(outputs.len() as u64, stream.count());
            watermarks.push(outputs.len());
        };
        let session = TrialSession {
            checkpoint_every: 50,
            on_checkpoint: Some(&mut on_checkpoint),
            ..TrialSession::default()
        };
        session_run(220, &RuntimeConfig::threaded(3), session);
        assert_eq!(watermarks, vec![50, 100, 150, 200]);
    }

    #[test]
    fn cancelled_session_commits_a_resumable_prefix() {
        for threads in [1, 4] {
            let config = RuntimeConfig::threaded(threads);
            let (whole, _) = session_run(300, &config, TrialSession::default());

            let token = CancelToken::new();
            token.cancel(); // trip before the run: nothing should execute
            let mut last: Option<(Vec<f64>, OnlineStats)> = None;
            let mut on_checkpoint = |outputs: &[f64], stream: &OnlineStats| {
                last = Some((outputs.to_vec(), *stream));
            };
            let (out, report) = session_run(
                300,
                &config,
                TrialSession {
                    cancel: Some(&token),
                    checkpoint_every: 32,
                    on_checkpoint: Some(&mut on_checkpoint),
                    ..TrialSession::default()
                },
            );
            assert!(report.cancelled);
            assert!(out.is_empty());
            assert!(last.is_none(), "no trials, no checkpoint");

            // Trip mid-run (from inside a trial body): the committed prefix
            // must be contiguous and resume to the uninterrupted result.
            let token = CancelToken::new();
            let mut last: Option<(Vec<f64>, OnlineStats)> = None;
            let mut on_checkpoint = |outputs: &[f64], stream: &OnlineStats| {
                last = Some((outputs.to_vec(), *stream));
            };
            enum Never {}
            let cancel_at = 150usize;
            let result: Result<_, Never> = run_trials_session(
                300,
                &config,
                TrialSession {
                    cancel: Some(&token),
                    checkpoint_every: 32,
                    on_checkpoint: Some(&mut on_checkpoint),
                    ..TrialSession::default()
                },
                |t| {
                    if t == cancel_at {
                        token.cancel();
                    }
                    Ok(lognormal_trial(21, t))
                },
                |x: &f64| x.ln(),
            );
            let (out, report) = match result {
                Ok(pair) => pair,
                Err(never) => match never {},
            };
            assert!(report.cancelled, "threads {threads}");
            assert!(!out.is_empty() && out.len() < 300);
            assert_eq!(out[..], whole[..out.len()], "prefix must be contiguous");
            let (outputs, stream) = last.expect("final checkpoint fired");
            assert_eq!(outputs.len(), out.len());

            let (resumed, resumed_report) = session_run(
                300,
                &config,
                TrialSession {
                    resume: Some(SessionState { outputs, stream }),
                    ..TrialSession::default()
                },
            );
            assert_eq!(resumed, whole, "threads {threads}");
            assert!(!resumed_report.cancelled);
        }
    }

    #[test]
    fn single_trial_runs_inline() {
        let (out, report) = run_trials_infallible(
            1,
            &RuntimeConfig::threaded(8),
            |t| lognormal_trial(3, t),
            |x| x.ln(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(report.trials_per_thread.iter().sum::<usize>(), 1);
    }
}
