//! Deterministic data-parallel primitives: `parallel_fill`,
//! [`parallel_map_chunks`] and [`parallel_reduce`] over **fixed-size
//! chunks**.
//!
//! The Monte Carlo scheduler in the crate root parallelizes over *trials*;
//! these primitives parallelize over *data* — matrix rows, vector entries,
//! mesh cells — with the same invariance contract: **results are
//! bit-identical for any thread count**, including the single-threaded
//! path. Two rules deliver that:
//!
//! 1. **Chunking is fixed by the caller's chunk size**, never derived from
//!    the thread count. Workers steal chunk *indices* from a shared atomic
//!    counter, so load balancing changes which thread touches a chunk but
//!    never where chunk boundaries fall.
//! 2. **Reduction order is chunk-index order.** Partial results are merged
//!    on the calling thread by folding chunk 0, 1, 2, … left to right, so
//!    floating-point accumulation follows one fixed association no matter
//!    how the chunks were scheduled. The sequential path runs the *same*
//!    chunked code, so `threads = 1` agrees bit-for-bit too.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of fixed-size chunks covering `0..n`.
pub fn chunk_count(n: usize, chunk: usize) -> usize {
    n.div_ceil(chunk.max(1))
}

/// The index range of chunk `c` for length `n` and the given chunk size.
fn chunk_range(c: usize, n: usize, chunk: usize) -> Range<usize> {
    let start = c * chunk;
    start..(start + chunk).min(n)
}

/// Maps every fixed-size chunk of `0..n` through `map` and returns the
/// per-chunk results **in chunk order**.
///
/// `map(c, range)` receives the chunk index and its index range; it may run
/// on any worker thread, so it must derive everything from its arguments
/// (plus captured shared state). The output vector is ordered by chunk
/// index regardless of scheduling, which is what makes downstream merges
/// deterministic.
pub fn parallel_map_chunks<T, F>(n: usize, chunk: usize, threads: usize, map: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let chunk = chunk.max(1);
    let chunks = chunk_count(n, chunk);
    if threads <= 1 || chunks <= 1 {
        return (0..chunks)
            .map(|c| map(c, chunk_range(c, n, chunk)))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let workers = threads.min(chunks);
    let mut per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let map = &map;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= chunks {
                            break;
                        }
                        out.push((c, map(c, chunk_range(c, n, chunk))));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("data-parallel worker panicked"))
            .collect()
    });
    // Restore chunk order: concatenate and sort by chunk index.
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(chunks);
    for w in &mut per_worker {
        tagged.append(w);
    }
    tagged.sort_by_key(|(c, _)| *c);
    tagged.into_iter().map(|(_, v)| v).collect()
}

/// Chunked map-reduce: maps every fixed chunk of `0..n` and folds the
/// partial results **left to right in chunk order**.
///
/// Returns `None` iff `n == 0`. The fold runs on the calling thread, so
/// `fold` needs no synchronization; with a fixed `chunk` the association of
/// every floating-point sum is independent of `threads`.
pub fn parallel_reduce<T, F, R>(
    n: usize,
    chunk: usize,
    threads: usize,
    map: F,
    fold: R,
) -> Option<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
    R: FnMut(T, T) -> T,
{
    parallel_map_chunks(n, chunk, threads, map)
        .into_iter()
        .reduce(fold)
}

/// Updates every element of `out` in place via `update(index, &mut value)`,
/// parallelizing over fixed-size chunks.
///
/// Each element is written exactly once by exactly one worker, so the
/// result never depends on scheduling. Chunks are handed out through a
/// shared queue of disjoint sub-slices — no `unsafe` aliasing.
pub fn parallel_fill<U, F>(out: &mut [U], chunk: usize, threads: usize, update: F)
where
    U: Send,
    F: Fn(usize, &mut U) + Sync,
{
    let chunk = chunk.max(1);
    let n = out.len();
    if threads <= 1 || n <= chunk {
        for (i, u) in out.iter_mut().enumerate() {
            update(i, u);
        }
        return;
    }
    let workers = threads.min(chunk_count(n, chunk));
    // Reversed so that popping from the back serves chunks in index order
    // (irrelevant for correctness; keeps the memory walk mostly forward).
    let queue: Mutex<Vec<(usize, &mut [U])>> = Mutex::new(
        out.chunks_mut(chunk)
            .enumerate()
            .map(|(c, s)| (c * chunk, s))
            .rev()
            .collect(),
    );
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let update = &update;
            scope.spawn(move || loop {
                let Some((start, slice)) = queue.lock().expect("chunk queue poisoned").pop() else {
                    break;
                };
                for (off, u) in slice.iter_mut().enumerate() {
                    update(start + off, u);
                }
            });
        }
    });
}

/// Updates every fixed-size chunk of `out` in place via
/// `update(start, chunk_slice)`.
///
/// The chunk-level sibling of [`parallel_fill`]: the closure receives a
/// whole disjoint sub-slice (plus its starting index) instead of one
/// element, so callers can run unrolled or otherwise blocked chunk bodies.
/// Chunk boundaries depend only on `chunk`, never on `threads`, and each
/// chunk is written by exactly one worker — the same determinism contract
/// as the rest of this module.
pub fn parallel_chunks_mut<U, F>(out: &mut [U], chunk: usize, threads: usize, update: F)
where
    U: Send,
    F: Fn(usize, &mut [U]) + Sync,
{
    let chunk = chunk.max(1);
    let n = out.len();
    if threads <= 1 || n <= chunk {
        for (c, s) in out.chunks_mut(chunk).enumerate() {
            update(c * chunk, s);
        }
        return;
    }
    let workers = threads.min(chunk_count(n, chunk));
    let queue: Mutex<Vec<(usize, &mut [U])>> = Mutex::new(
        out.chunks_mut(chunk)
            .enumerate()
            .map(|(c, s)| (c * chunk, s))
            .rev()
            .collect(),
    );
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let update = &update;
            scope.spawn(move || loop {
                let Some((start, slice)) = queue.lock().expect("chunk queue poisoned").pop() else {
                    break;
                };
                update(start, slice);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_chunks_preserves_chunk_order() {
        for threads in [1, 2, 8] {
            let out = parallel_map_chunks(10, 3, threads, |c, r| (c, r.start, r.end));
            assert_eq!(
                out,
                vec![(0, 0, 3), (1, 3, 6), (2, 6, 9), (3, 9, 10)],
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn reduce_is_bit_identical_across_thread_counts() {
        // Values chosen so summation order visibly matters in f64.
        let xs: Vec<f64> = (0..100_000)
            .map(|i| ((i * 2_654_435_761_u64 as usize) % 1000) as f64 * 1e-3 + 1e10)
            .collect();
        let sum = |threads| {
            parallel_reduce(
                xs.len(),
                4096,
                threads,
                |_, r| xs[r].iter().sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        let seq = sum(1);
        for threads in [2, 3, 8] {
            assert_eq!(seq.to_bits(), sum(threads).to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn reduce_of_empty_input_is_none() {
        assert_eq!(
            parallel_reduce(0, 16, 4, |_, r| r.len(), |a, b| a + b),
            None
        );
    }

    #[test]
    fn fill_writes_every_index_once() {
        for threads in [1, 2, 8] {
            let mut out = vec![0usize; 1037];
            parallel_fill(&mut out, 64, threads, |i, u| *u = i * 3);
            assert!(
                out.iter().enumerate().all(|(i, &v)| v == i * 3),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn fill_updates_in_place() {
        let mut out: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let expect: Vec<f64> = out.iter().map(|v| v * 2.0 + 1.0).collect();
        parallel_fill(&mut out, 32, 4, |_, u| *u = *u * 2.0 + 1.0);
        assert_eq!(out, expect);
    }

    #[test]
    fn chunks_mut_covers_every_chunk_once() {
        for threads in [1, 2, 8] {
            let mut out = vec![0usize; 1037];
            parallel_chunks_mut(&mut out, 64, threads, |start, slice| {
                for (off, u) in slice.iter_mut().enumerate() {
                    *u = (start + off) * 3;
                }
            });
            assert!(
                out.iter().enumerate().all(|(i, &v)| v == i * 3),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn chunk_count_basics() {
        assert_eq!(chunk_count(0, 16), 0);
        assert_eq!(chunk_count(16, 16), 1);
        assert_eq!(chunk_count(17, 16), 2);
    }
}
