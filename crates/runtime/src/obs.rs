//! Observability primitives shared by every crate in the workspace.
//!
//! Three instruments, all `std`-only:
//!
//! * [`Counter`] — a relaxed atomic monotonic counter.
//! * [`Histogram`] — fixed log-spaced latency buckets with Prometheus
//!   `histogram` text exposition (`_bucket{le=…}` / `_sum` / `_count`).
//! * [`span`] — RAII scoped timers. Each thread accumulates its own span
//!   statistics locally (no locks, no atomics on the hot path) and merges
//!   them into the process-wide table only when its *outermost* span
//!   closes, so deeply nested instrumentation costs two `Instant::now()`
//!   calls and a thread-local map update per span.
//!
//! Leaf crates (the stress cache, the MC scheduler) record through the
//! process-global registry ([`counter`] / [`histogram`]) instead of
//! threading handles through every API; [`render_registry`] turns the
//! whole registry into Prometheus text for `emgrid-serve`'s `/metrics`.
//!
//! Instrumentation must never perturb results: counters and histograms
//! are observe-only, and spans are inert (a single relaxed atomic load)
//! until [`set_trace`] arms them — analysis outputs stay byte-identical
//! whether or not anything is watching.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A monotonic counter. Relaxed ordering: these feed dashboards, never
/// control flow.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, seconds: a 1–2.5–5 ladder from
/// 10 µs to 60 s (log-spaced, ~3 buckets per decade). Wide enough for a
/// `/healthz` round-trip and a multi-minute signoff job alike.
pub const LATENCY_BOUNDS: &[f64] = &[
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 60.0,
];

/// A fixed-bucket histogram in Prometheus `histogram` semantics:
/// cumulative `le` buckets plus an implicit `+Inf`, a sum and a count.
///
/// Observation is three relaxed atomic adds; there is no lock anywhere,
/// so concurrent connection threads can observe freely.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus the `+Inf` overflow slot.
    buckets: Vec<AtomicU64>,
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over the given strictly increasing upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// `count` log-spaced bounds starting at `first`, each `factor` apart.
    pub fn log_spaced(first: f64, factor: f64, count: usize) -> Self {
        assert!(first > 0.0 && factor > 1.0 && count > 0);
        let bounds: Vec<f64> = (0..count).map(|i| first * factor.powi(i as i32)).collect();
        Self::with_bounds(&bounds)
    }

    /// The default latency histogram over [`LATENCY_BOUNDS`].
    pub fn latency() -> Self {
        Self::with_bounds(LATENCY_BOUNDS)
    }

    /// Records one observation in seconds. Non-finite or negative values
    /// are clamped to zero rather than poisoning the sum.
    pub fn observe(&self, seconds: f64) {
        let v = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        let idx = self.bounds.partition_point(|b| v > *b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add((v * 1e9).round() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation from a [`Duration`].
    pub fn observe_duration(&self, elapsed: Duration) {
        self.observe(elapsed.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values, seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }
}

/// Appends the `# HELP` / `# TYPE` pair for one metric family.
pub fn render_help(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends one histogram series. `labels` is either empty or
/// comma-joined `key="value"` pairs without braces (the `le` label is
/// appended by this function).
pub fn render_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for (bound, bucket) in h.bounds.iter().zip(&h.buckets) {
        cumulative += bucket.load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}"
        );
    }
    cumulative += h.buckets[h.bounds.len()].load(Ordering::Relaxed);
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}"
    );
    let braces = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{name}_sum{braces} {}", h.sum_seconds());
    let _ = writeln!(out, "{name}_count{braces} {}", h.count());
}

// ---------------------------------------------------------------------------
// Process-global registry
// ---------------------------------------------------------------------------

enum Instrument {
    Counter(&'static Counter),
    Histogram(&'static Histogram),
}

struct Registered {
    help: &'static str,
    instrument: Instrument,
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Registered>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Registered>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The process-global counter named `name`, registering it on first use.
/// The handle is `'static`, so call sites may cache it.
///
/// # Panics
///
/// Panics if `name` is already registered as a histogram.
pub fn counter(name: &'static str, help: &'static str) -> &'static Counter {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let entry = reg.entry(name).or_insert_with(|| Registered {
        help,
        instrument: Instrument::Counter(Box::leak(Box::new(Counter::new()))),
    });
    match entry.instrument {
        Instrument::Counter(c) => c,
        Instrument::Histogram(_) => panic!("{name} is registered as a histogram"),
    }
}

/// The process-global latency histogram named `name`, registering it on
/// first use (over [`LATENCY_BOUNDS`]).
///
/// # Panics
///
/// Panics if `name` is already registered as a counter.
pub fn histogram(name: &'static str, help: &'static str) -> &'static Histogram {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let entry = reg.entry(name).or_insert_with(|| Registered {
        help,
        instrument: Instrument::Histogram(Box::leak(Box::new(Histogram::latency()))),
    });
    match entry.instrument {
        Instrument::Histogram(h) => h,
        Instrument::Counter(_) => panic!("{name} is registered as a counter"),
    }
}

/// Appends every registered instrument in name order, each with its
/// HELP/TYPE pair. Counters registered by *any* crate in the process
/// (stress cache, MC scheduler, FEA) show up in one scrape.
pub fn render_registry(out: &mut String) {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for (name, r) in reg.iter() {
        match r.instrument {
            Instrument::Counter(c) => {
                render_help(out, name, r.help, "counter");
                let _ = writeln!(out, "{name} {}", c.get());
            }
            Instrument::Histogram(h) => {
                render_help(out, name, r.help, "histogram");
                render_histogram(out, name, "", h);
            }
        }
    }
}

/// The value of a registered global counter, for tests and reports.
pub fn counter_value(name: &str) -> Option<u64> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.get(name).and_then(|r| match r.instrument {
        Instrument::Counter(c) => Some(c.get()),
        Instrument::Histogram(_) => None,
    })
}

// ---------------------------------------------------------------------------
// Scoped spans
// ---------------------------------------------------------------------------

static TRACE: AtomicBool = AtomicBool::new(false);

/// Arms (or disarms) span recording process-wide. Disarmed spans cost a
/// single relaxed load, so instrumentation can stay in release builds.
pub fn set_trace(enabled: bool) {
    TRACE.store(enabled, Ordering::Relaxed);
}

/// Whether spans are currently recording.
pub fn trace_enabled() -> bool {
    TRACE.load(Ordering::Relaxed)
}

#[derive(Debug, Default, Clone, Copy)]
struct SpanStat {
    count: u64,
    nanos: u64,
}

#[derive(Default)]
struct ThreadSpans {
    /// The open-span stack; a span's aggregation key is the `/`-joined
    /// path of this stack at close time, so nesting is derived from call
    /// structure, not declared by callers.
    stack: Vec<&'static str>,
    acc: BTreeMap<String, SpanStat>,
}

thread_local! {
    static LOCAL_SPANS: RefCell<ThreadSpans> = RefCell::new(ThreadSpans::default());
}

fn global_spans() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static GLOBAL: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// An open span; closing (dropping) it records the elapsed time under
/// its stack path. Returned by [`span`] — bind it (`let _span = …`), a
/// bare `let _ =` closes it immediately.
#[must_use = "binding the guard keeps the span open for the scope"]
pub struct Span {
    start: Instant,
    armed: bool,
}

/// Opens a scoped span named `name`. Inert unless [`set_trace`] armed
/// tracing before the span opened.
pub fn span(name: &'static str) -> Span {
    let armed = trace_enabled();
    if armed {
        LOCAL_SPANS.with(|l| l.borrow_mut().stack.push(name));
    }
    Span {
        start: Instant::now(),
        armed,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let elapsed = self.start.elapsed();
        LOCAL_SPANS.with(|l| {
            let mut l = l.borrow_mut();
            let path = l.stack.join("/");
            l.stack.pop();
            let stat = l.acc.entry(path).or_default();
            stat.count += 1;
            stat.nanos += elapsed.as_nanos() as u64;
            // Root scope closed: this thread's accumulator merges into the
            // process table in one short critical section.
            if l.stack.is_empty() {
                let drained = std::mem::take(&mut l.acc);
                let mut global = global_spans().lock().unwrap_or_else(|e| e.into_inner());
                for (p, s) in drained {
                    let t = global.entry(p).or_default();
                    t.count += s.count;
                    t.nanos += s.nanos;
                }
            }
        });
    }
}

/// Clears the recorded span table (tests, or between CLI runs).
pub fn reset_spans() {
    global_spans()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Renders the recorded spans as an indented tree with per-path call
/// count, total and mean wall time. Lexicographic path order places each
/// parent directly above its children.
pub fn span_report() -> String {
    let global = global_spans().lock().unwrap_or_else(|e| e.into_inner());
    if global.is_empty() {
        return "trace: no spans recorded\n".into();
    }
    let mut out = String::from("trace: span tree (calls, total, mean)\n");
    for (path, stat) in global.iter() {
        let depth = path.matches('/').count();
        let name = path.rsplit('/').next().unwrap_or(path);
        let total = stat.nanos as f64 / 1e9;
        let mean = total / stat.count.max(1) as f64;
        let _ = writeln!(
            out,
            "{:indent$}{name:<28} {:>7}x  {:>10}  {:>10}",
            "",
            stat.count,
            fmt_secs(total),
            fmt_secs(mean),
            indent = depth * 2
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trace flag is process-global; tests that toggle it must not
    /// overlap.
    fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded() {
        let h = Histogram::with_bounds(&[0.001, 0.01, 0.1]);
        h.observe(0.0005); // -> le=0.001
        h.observe(0.005); // -> le=0.01
        h.observe(0.05); // -> le=0.1
        h.observe(5.0); // -> +Inf
        h.observe(0.001); // boundary lands in le=0.001 (inclusive)
        assert_eq!(h.count(), 5);
        let mut out = String::new();
        render_histogram(&mut out, "t_seconds", "", &h);
        assert!(out.contains("t_seconds_bucket{le=\"0.001\"} 2\n"), "{out}");
        assert!(out.contains("t_seconds_bucket{le=\"0.01\"} 3\n"), "{out}");
        assert!(out.contains("t_seconds_bucket{le=\"0.1\"} 4\n"), "{out}");
        assert!(out.contains("t_seconds_bucket{le=\"+Inf\"} 5\n"), "{out}");
        assert!(out.contains("t_seconds_count 5\n"), "{out}");
    }

    #[test]
    fn histogram_labels_compose_with_le() {
        let h = Histogram::with_bounds(&[1.0]);
        h.observe(0.5);
        let mut out = String::new();
        render_histogram(&mut out, "t_seconds", "route=\"healthz\"", &h);
        assert!(
            out.contains("t_seconds_bucket{route=\"healthz\",le=\"1\"} 1\n"),
            "{out}"
        );
        assert!(out.contains("t_seconds_sum{route=\"healthz\"}"), "{out}");
        assert!(
            out.contains("t_seconds_count{route=\"healthz\"} 1\n"),
            "{out}"
        );
    }

    #[test]
    fn histogram_rejects_garbage_observations() {
        let h = Histogram::with_bounds(&[1.0]);
        h.observe(f64::NAN);
        h.observe(-3.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_seconds(), 0.0);
    }

    #[test]
    fn log_spaced_bounds_grow_by_factor() {
        let h = Histogram::log_spaced(1e-4, 10.0, 4);
        let mut out = String::new();
        render_histogram(&mut out, "x", "", &h);
        assert!(out.contains("le=\"0.0001\""), "{out}");
        assert!(out.contains("le=\"0.1\""), "{out}");
    }

    #[test]
    fn registry_renders_help_and_type_for_every_family() {
        counter("obs_test_counter_total", "A test counter.").add(7);
        histogram("obs_test_seconds", "A test histogram.").observe(0.02);
        let mut out = String::new();
        render_registry(&mut out);
        assert!(out.contains("# HELP obs_test_counter_total A test counter.\n"));
        assert!(out.contains("# TYPE obs_test_counter_total counter\n"));
        assert!(out.contains("obs_test_counter_total 7\n"));
        assert!(out.contains("# TYPE obs_test_seconds histogram\n"));
        assert!(out.contains("obs_test_seconds_bucket{le=\"+Inf\"} 1\n"));
        assert_eq!(counter_value("obs_test_counter_total"), Some(7));
    }

    #[test]
    fn spans_nest_by_call_structure_and_merge_on_root_exit() {
        let _guard = trace_lock();
        reset_spans();
        set_trace(true);
        {
            let _root = span("outer_test_span");
            for _ in 0..3 {
                let _child = span("inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        set_trace(false);
        let report = span_report();
        assert!(report.contains("outer_test_span"), "{report}");
        assert!(report.contains("inner"), "{report}");
        let global = global_spans().lock().unwrap();
        assert_eq!(global["outer_test_span"].count, 1);
        assert_eq!(global["outer_test_span/inner"].count, 3);
        assert!(global["outer_test_span/inner"].nanos >= 3_000_000);
        drop(global);
        reset_spans();
    }

    #[test]
    fn disarmed_spans_record_nothing() {
        let _guard = trace_lock();
        set_trace(false);
        {
            let _s = span("never_recorded_span");
        }
        let global = global_spans().lock().unwrap();
        assert!(!global.contains_key("never_recorded_span"));
    }
}
