//! Critical stress for void nucleation — Eq. (4) of the paper.
//!
//! Voids nucleate at circular adhesion flaws between the copper and the
//! Si₃N₄ capping layer (paper Fig. 3). Nucleation becomes thermodynamically
//! feasible when the tensile stress exceeds
//! `σ_C = 2 γ_s sin θ_C / R_f`.

/// Critical stress (Pa) for a circular flaw of radius `flaw_radius` (m)
/// with copper surface energy `surface_energy` (J/m²) and contact angle
/// `contact_angle_deg` (degrees) — Eq. (4).
///
/// # Panics
///
/// Panics if `flaw_radius <= 0` or `surface_energy <= 0`.
///
/// # Example
///
/// ```
/// use emgrid_em::critical_stress;
///
/// // The paper's nominal numbers: γ_s for Cu with a 10 nm flaw, θ = 90°.
/// let sc = critical_stress(1.7, 90.0, 10e-9);
/// assert!((sc / 1e6 - 340.0).abs() < 1e-6);
/// ```
pub fn critical_stress(surface_energy: f64, contact_angle_deg: f64, flaw_radius: f64) -> f64 {
    assert!(flaw_radius > 0.0, "flaw radius must be positive");
    assert!(surface_energy > 0.0, "surface energy must be positive");
    2.0 * surface_energy * contact_angle_deg.to_radians().sin() / flaw_radius
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::Technology;
    use emgrid_stats::seeded_rng;
    use proptest::prelude::*;

    #[test]
    fn larger_flaws_nucleate_easier() {
        let small = critical_stress(1.7, 90.0, 5e-9);
        let large = critical_stress(1.7, 90.0, 20e-9);
        assert!(large < small);
        assert!((small / large - 4.0).abs() < 1e-12);
    }

    #[test]
    fn contact_angle_scales_with_sine() {
        let s90 = critical_stress(1.7, 90.0, 10e-9);
        let s30 = critical_stress(1.7, 30.0, 10e-9);
        assert!((s30 / s90 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distribution_agrees_with_pointwise_formula() {
        // Sampling R_f and applying Eq. (4) must be distributed like the
        // analytic lognormal from Technology::critical_stress_distribution.
        let tech = Technology::default();
        let rf = tech.flaw_radius_distribution();
        let sc = tech.critical_stress_distribution();
        let mut rng = seeded_rng(21);
        let samples: Vec<f64> = (0..5000)
            .map(|_| {
                critical_stress(
                    tech.surface_energy,
                    tech.contact_angle_deg,
                    rf.sample(&mut rng),
                )
            })
            .collect();
        let ecdf = emgrid_stats::Ecdf::new(samples);
        let d = emgrid_stats::ks_statistic(&ecdf, |x| sc.cdf(x));
        assert!(d < 0.03, "KS distance {d}");
    }

    proptest! {
        #[test]
        fn positive_for_valid_inputs(
            gamma in 0.1f64..10.0,
            theta in 1.0f64..179.0,
            rf in 1e-10f64..1e-6,
        ) {
            prop_assert!(critical_stress(gamma, theta, rf) > 0.0);
        }
    }
}
