//! Process-technology parameters for the EM model.

use emgrid_stats::LogNormal;

use crate::constants::{celsius_to_kelvin, BOLTZMANN, ELECTRON_VOLT};

/// The calibrated parameter set of the Cu DD electromigration model.
///
/// All quantities are SI. Defaults are chosen so that the paper's nominal
/// operating point — a 4×4 via array at a total current density of
/// `1×10¹⁰ A/m²` and 105 °C, with precharacterized thermomechanical stresses
/// in the 200–280 MPa range — produces nucleation times of a few years,
/// matching the scale of the paper's Figs. 8–10 (see DESIGN.md §2 for the
/// calibration note).
///
/// # Example
///
/// ```
/// use emgrid_em::Technology;
///
/// let tech = Technology::default();
/// assert!((tech.critical_stress_distribution().median() / 1e6 - 340.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Atomic volume of copper `Ω`, m³.
    pub atomic_volume: f64,
    /// Effective charge number `Z*` (dimensionless).
    pub effective_charge: f64,
    /// Copper resistivity `ρ_Cu` at operating temperature, Ω·m.
    pub resistivity: f64,
    /// Effective bulk modulus `B` of the confined Cu/dielectric system, Pa.
    pub bulk_modulus: f64,
    /// EM diffusivity prefactor `D₀`, m²/s.
    pub diffusivity_prefactor: f64,
    /// Effective activation energy `E_a`, eV.
    pub activation_energy_ev: f64,
    /// Copper surface free energy `γ_s`, J/m².
    pub surface_energy: f64,
    /// Void contact angle `θ_C`, degrees (90° for the circular flaw).
    pub contact_angle_deg: f64,
    /// Mean flaw radius `R_f`, m (the paper uses 10 nm).
    pub flaw_radius_mean: f64,
    /// Coefficient of variation of `R_f` (the paper uses sd = 5% of mean).
    pub flaw_radius_cv: f64,
    /// Operating temperature, °C.
    pub operating_temperature_c: f64,
    /// Package-induced stress component added to the local thermomechanical
    /// stress, Pa. The paper treats this as "an input to the method".
    pub package_stress: f64,
}

impl Default for Technology {
    fn default() -> Self {
        Technology {
            atomic_volume: 1.18e-29,
            effective_charge: 1.0,
            resistivity: 3.0e-8,
            bulk_modulus: 28e9,
            diffusivity_prefactor: 7.8e-5,
            activation_energy_ev: 1.15,
            surface_energy: 1.7,
            contact_angle_deg: 90.0,
            flaw_radius_mean: 10e-9,
            flaw_radius_cv: 0.05,
            operating_temperature_c: 105.0,
            package_stress: 0.0,
        }
    }
}

impl Technology {
    /// Operating temperature in Kelvin.
    pub fn temperature_k(&self) -> f64 {
        celsius_to_kelvin(self.operating_temperature_c)
    }

    /// Thermal energy `k_B T` at the operating temperature, J.
    pub fn thermal_energy(&self) -> f64 {
        BOLTZMANN * self.temperature_k()
    }

    /// Activation energy in Joules.
    pub fn activation_energy(&self) -> f64 {
        self.activation_energy_ev * ELECTRON_VOLT
    }

    /// The lognormal flaw-radius distribution `R_f` (paper §2.2: lognormal,
    /// mean 10 nm, sd 5% of mean).
    ///
    /// # Panics
    ///
    /// Panics if the configured mean or CV is non-positive.
    pub fn flaw_radius_distribution(&self) -> LogNormal {
        LogNormal::from_mean_sd(
            self.flaw_radius_mean,
            self.flaw_radius_cv * self.flaw_radius_mean,
        )
        .expect("flaw radius parameters must be positive")
    }

    /// The critical-stress distribution implied by Eq. (4):
    /// `σ_C = 2 γ_s sin θ_C / R_f`, exactly lognormal because `R_f` is.
    ///
    /// # Panics
    ///
    /// Panics if the configured geometry parameters are non-positive.
    pub fn critical_stress_distribution(&self) -> LogNormal {
        let c = 2.0 * self.surface_energy * self.contact_angle_deg.to_radians().sin();
        self.flaw_radius_distribution()
            .powered(-1.0)
            .and_then(|inv| inv.scaled(c))
            .expect("critical stress parameters must be positive")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emgrid_stats::seeded_rng;

    #[test]
    fn default_critical_stress_median_near_340_mpa() {
        // 2 · 1.7 J/m² / 10 nm = 340 MPa.
        let d = Technology::default().critical_stress_distribution();
        assert!((d.median() / 1e6 - 340.0).abs() < 3.0, "{}", d.median());
    }

    #[test]
    fn critical_stress_spread_is_order_100_mpa() {
        // Paper §2.2: σ_C "can vary by as much as 100 MPa".
        let d = Technology::default().critical_stress_distribution();
        let spread = d.quantile(0.9987) - d.quantile(0.0013);
        assert!(
            spread > 60e6 && spread < 150e6,
            "spread {} MPa",
            spread / 1e6
        );
    }

    #[test]
    fn critical_stress_sampling_matches_reciprocal_flaw() {
        let tech = Technology::default();
        let rf = tech.flaw_radius_distribution();
        let sc = tech.critical_stress_distribution();
        let mut rng = seeded_rng(9);
        for _ in 0..100 {
            let r = rf.sample(&mut rng);
            let s = 2.0 * tech.surface_energy / r;
            // The analytic distribution must cover sampled reciprocals.
            assert!(sc.cdf(s) > 0.0 && sc.cdf(s) < 1.0);
        }
    }

    #[test]
    fn thermal_energy_is_consistent() {
        let t = Technology::default();
        assert!((t.temperature_k() - 378.15).abs() < 1e-12);
        assert!((t.thermal_energy() - BOLTZMANN * 378.15).abs() < 1e-30);
    }
}
