//! Physical constants (SI).

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge, C.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// One electron-volt, J.
pub const ELECTRON_VOLT: f64 = 1.602_176_634e-19;

/// Zero Celsius in Kelvin.
pub const CELSIUS_OFFSET: f64 = 273.15;

/// Converts Celsius to Kelvin.
pub fn celsius_to_kelvin(c: f64) -> f64 {
    c + CELSIUS_OFFSET
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kelvin_conversion() {
        assert_eq!(celsius_to_kelvin(0.0), 273.15);
        assert_eq!(celsius_to_kelvin(105.0), 378.15);
        assert_eq!(celsius_to_kelvin(-273.15), 0.0);
    }

    #[test]
    fn thermal_energy_at_operating_temperature() {
        // kT at 105 °C should be about 5.22e-21 J (sanity anchor for the
        // nucleation-model arithmetic).
        let kt = BOLTZMANN * celsius_to_kelvin(105.0);
        assert!((kt - 5.2205e-21).abs() / kt < 1e-3);
    }
}
