//! Electromigration void-nucleation physics (the paper's §2).
//!
//! Implements the stress-threshold nucleation model used by the paper:
//!
//! * **Eq. (1)–(3)** — the Korhonen-style nucleation time
//!   `t_n = C_tn (σ_C − σ_T)² / D_eff` with
//!   `C_tn = (Ω/4) · π k_B T / ((e Z* ρ_Cu j)² B)` and
//!   `D_eff = D₀ exp(−E_a / k_B T)` ([`nucleation`]),
//! * **Eq. (4)** — the critical stress `σ_C = 2 γ_s sin θ_C / R_f` with a
//!   lognormal flaw radius `R_f`, making `σ_C` exactly lognormal
//!   ([`mod@critical_stress`]),
//! * the [`Technology`] parameter set that calibrates both, with defaults
//!   that land the nominal 4×4 via array at `j = 1×10¹⁰ A/m²`, 105 °C in the
//!   paper's multi-year TTF range,
//! * an optional void-**growth** stage ([`void_growth`]) — negligible for
//!   the slit voids of Cu technology per the paper, but implemented for
//!   completeness and for ablation studies against Al-era TTF models.
//!
//! # Example
//!
//! ```
//! use emgrid_em::{Technology, nucleation};
//!
//! let tech = Technology::default();
//! // Median critical stress vs a precharacterized 240 MPa thermomechanical
//! // stress at the nominal power-grid current density.
//! let sigma_c = tech.critical_stress_distribution().median();
//! let ttf = nucleation::nucleation_time(&tech, sigma_c, 240e6, 1e10);
//! let years = ttf / nucleation::SECONDS_PER_YEAR;
//! assert!(years > 1.0 && years < 20.0, "nominal TTF {years} years");
//! ```

pub mod black;
pub mod constants;
pub mod critical_stress;
pub mod nucleation;
pub mod technology;
pub mod void_growth;

pub use black::BlackModel;
pub use critical_stress::critical_stress;
pub use nucleation::{diffusivity, nucleation_constant, nucleation_time, SECONDS_PER_YEAR};
pub use technology::Technology;
pub use void_growth::GrowthModel;
