//! Black's-equation baseline — the conventional EM signoff the paper
//! argues against.
//!
//! The paper's introduction: *"Today, circuit designers typically guard
//! against EM by comparing current densities against a foundry-specified
//! limit for a process technology"*, with lifetimes extrapolated from
//! accelerated tests through Black's law `MTTF = A j⁻ⁿ exp(E_a / k_B T)`.
//! That flow is blind to layout-dependent thermomechanical stress — the
//! paper's whole point. This module implements the baseline so the
//! stress-aware analysis can be compared against it quantitatively
//! (see the `ablation_sweeps` binary and `emgrid_pg`'s `signoff` module).

use crate::constants::BOLTZMANN;
use crate::nucleation;
use crate::technology::Technology;

/// Black's-law model parameters.
///
/// # Example
///
/// ```
/// use emgrid_em::{black::BlackModel, Technology, SECONDS_PER_YEAR};
///
/// // Calibrate from an accelerated test (the foundry flow), then ask for
/// // the current-density design rule at a 10-year target.
/// let tech = Technology::default();
/// let black = BlackModel::from_accelerated_test(&tech, 3e10, 300.0);
/// let limit = black.current_density_limit(10.0 * SECONDS_PER_YEAR, tech.temperature_k());
/// assert!(limit > 1e9 && limit < 1e12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlackModel {
    /// Proportionality constant `A`, chosen at calibration (s·(A/m²)ⁿ).
    pub prefactor: f64,
    /// Current-density exponent `n` (2 for nucleation-limited failure,
    /// 1 for growth-limited; the paper's Cu vias are nucleation-limited).
    pub exponent: f64,
    /// Activation energy, eV.
    pub activation_energy_ev: f64,
}

impl BlackModel {
    /// Calibrates Black's law so it reproduces a reference MTTF at a
    /// reference stress condition `(j_ref, t_ref_kelvin)` — exactly how a
    /// foundry maps accelerated-test data to a model.
    ///
    /// # Panics
    ///
    /// Panics unless all reference quantities are positive.
    pub fn calibrated(
        mttf_ref: f64,
        j_ref: f64,
        temperature_ref_k: f64,
        exponent: f64,
        activation_energy_ev: f64,
    ) -> Self {
        assert!(mttf_ref > 0.0 && j_ref > 0.0 && temperature_ref_k > 0.0);
        let arrhenius = (activation_energy_ev * crate::constants::ELECTRON_VOLT
            / (BOLTZMANN * temperature_ref_k))
            .exp();
        BlackModel {
            prefactor: mttf_ref * j_ref.powf(exponent) / arrhenius,
            exponent,
            activation_energy_ev,
        }
    }

    /// Calibrates against this crate's nucleation model at an accelerated
    /// test condition, mimicking a foundry characterization at elevated
    /// temperature (the paper: "typically 300 °C") where thermomechanical
    /// stress is small because the part sits near its anneal state.
    pub fn from_accelerated_test(tech: &Technology, j_test: f64, test_temp_c: f64) -> Self {
        // At the accelerated temperature the CTE-mismatch stress is nearly
        // relaxed: the test sees σ_T ≈ 0 and only the median flaw.
        let test_tech = Technology {
            operating_temperature_c: test_temp_c,
            ..*tech
        };
        let sigma_c = tech.critical_stress_distribution().median();
        let mttf_test = nucleation::nucleation_time(&test_tech, sigma_c, 0.0, j_test);
        BlackModel::calibrated(
            mttf_test,
            j_test,
            test_tech.temperature_k(),
            2.0,
            tech.activation_energy_ev,
        )
    }

    /// Mean time to failure (seconds) at current density `j` (A/m²) and
    /// temperature `temperature_k` (K).
    ///
    /// # Panics
    ///
    /// Panics unless `j` and `temperature_k` are positive.
    pub fn mttf(&self, j: f64, temperature_k: f64) -> f64 {
        assert!(j > 0.0 && temperature_k > 0.0);
        let arrhenius = (self.activation_energy_ev * crate::constants::ELECTRON_VOLT
            / (BOLTZMANN * temperature_k))
            .exp();
        self.prefactor * j.powf(-self.exponent) * arrhenius
    }

    /// The largest current density meeting a lifetime target at the given
    /// temperature — the "foundry-specified limit" of a traditional design
    /// rule.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive.
    pub fn current_density_limit(&self, lifetime_target: f64, temperature_k: f64) -> f64 {
        assert!(lifetime_target > 0.0 && temperature_k > 0.0);
        let arrhenius = (self.activation_energy_ev * crate::constants::ELECTRON_VOLT
            / (BOLTZMANN * temperature_k))
            .exp();
        (self.prefactor * arrhenius / lifetime_target).powf(1.0 / self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::celsius_to_kelvin;
    use crate::nucleation::SECONDS_PER_YEAR;

    fn model() -> BlackModel {
        BlackModel::from_accelerated_test(&Technology::default(), 3e10, 300.0)
    }

    #[test]
    fn calibration_reproduces_the_reference_point() {
        let tech = Technology::default();
        let m = model();
        let test_tech = Technology {
            operating_temperature_c: 300.0,
            ..tech
        };
        let sigma_c = tech.critical_stress_distribution().median();
        let expect = nucleation::nucleation_time(&test_tech, sigma_c, 0.0, 3e10);
        let got = m.mttf(3e10, celsius_to_kelvin(300.0));
        assert!((got - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn inverse_square_current_dependence() {
        let m = model();
        let t = celsius_to_kelvin(105.0);
        assert!((m.mttf(1e10, t) / m.mttf(2e10, t) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn limit_inverts_mttf() {
        let m = model();
        let t = celsius_to_kelvin(105.0);
        let target = 10.0 * SECONDS_PER_YEAR;
        let j = m.current_density_limit(target, t);
        assert!((m.mttf(j, t) - target).abs() / target < 1e-9);
    }

    #[test]
    fn black_is_blind_to_thermomechanical_stress() {
        // The paper's core criticism, in one test: at operating conditions
        // the stress-aware model differentiates a Plus-interior via
        // (σ_T = 240 MPa) from an L-corner via (σ_T = 205 MPa) by a large
        // factor, while Black's law predicts the same lifetime for both.
        let tech = Technology::default();
        let m = model();
        let t_op = tech.temperature_k();
        let j = 1e10;
        let black_a = m.mttf(j, t_op);
        let black_b = m.mttf(j, t_op);
        assert_eq!(black_a, black_b);

        let sigma_c = tech.critical_stress_distribution().median();
        let aware_plus = nucleation::nucleation_time(&tech, sigma_c, 240e6, j);
        let aware_ell = nucleation::nucleation_time(&tech, sigma_c, 205e6, j);
        assert!(aware_ell / aware_plus > 1.5, "{}", aware_ell / aware_plus);
    }

    #[test]
    fn accelerated_test_underestimates_operating_stress_effects() {
        // Extrapolating the (stress-free) accelerated test down to 105 °C
        // overpredicts the lifetime of a stressed via — the unsafe
        // direction, which is why the paper's modeling matters.
        let tech = Technology::default();
        let m = model();
        let j = 1e10;
        let black_op = m.mttf(j, tech.temperature_k());
        let sigma_c = tech.critical_stress_distribution().median();
        let aware_op = nucleation::nucleation_time(&tech, sigma_c, 240e6, j);
        assert!(
            black_op > 2.0 * aware_op,
            "black {} yr vs stress-aware {} yr",
            black_op / SECONDS_PER_YEAR,
            aware_op / SECONDS_PER_YEAR
        );
    }
}
