//! The void-nucleation TTF model — Eqs. (1)–(3) of the paper.
//!
//! ```text
//! TTF ≈ t_n = C_tn (σ_C − σ_T)² / D_eff        (σ_C > σ_T, else 0)
//! D_eff = D₀ exp(−E_a / k_B T)
//! C_tn  = (Ω/4) · π k_B T / ((e Z* ρ_Cu j)² B)
//! ```
//!
//! The `1/j²` dependence inside `C_tn` is what couples the Monte Carlo
//! levels: when vias (or via arrays) fail and current redistributes,
//! surviving components age faster by the square of the current ratio
//! ([`rescale_remaining_life`]).

use crate::constants::ELEMENTARY_CHARGE;
use crate::technology::Technology;

/// Seconds per Julian year (the unit of every TTF plot in the paper).
pub const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;

/// Effective EM diffusivity `D_eff = D₀ exp(−E_a / k_B T)`, m²/s — Eq. (2).
pub fn diffusivity(tech: &Technology) -> f64 {
    tech.diffusivity_prefactor * (-tech.activation_energy() / tech.thermal_energy()).exp()
}

/// The nucleation constant `C_tn` of Eq. (3) for current density `j`
/// (A/m²), in m²·s/Pa² units such that
/// `t_n = C_tn (σ_C − σ_T)² / D_eff` is in seconds.
///
/// # Panics
///
/// Panics if `j <= 0`.
pub fn nucleation_constant(tech: &Technology, j: f64) -> f64 {
    assert!(j > 0.0, "current density must be positive");
    let force = ELEMENTARY_CHARGE * tech.effective_charge * tech.resistivity * j;
    (tech.atomic_volume / 4.0) * std::f64::consts::PI * tech.thermal_energy()
        / (force * force * tech.bulk_modulus)
}

/// Nucleation time (seconds) for a via whose flaw has critical stress
/// `sigma_c` (Pa), preexisting thermomechanical + package stress `sigma_t`
/// (Pa), at current density `j` (A/m²) — Eq. (1).
///
/// Returns `0` when `σ_C ≤ σ_T` (void formation is immediately feasible).
///
/// # Panics
///
/// Panics if `j <= 0`.
pub fn nucleation_time(tech: &Technology, sigma_c: f64, sigma_t: f64, j: f64) -> f64 {
    let margin = sigma_c - (sigma_t + tech.package_stress);
    if margin <= 0.0 {
        return 0.0;
    }
    nucleation_constant(tech, j) * margin * margin / diffusivity(tech)
}

/// Rescales the **remaining** life of a component when its current density
/// changes from `j_old` to `j_new` (TTF ∝ 1/j², so the residual life scales
/// by `(j_old / j_new)²`).
///
/// `remaining` is the residual life under `j_old`; the return value is the
/// residual life under `j_new`.
///
/// # Panics
///
/// Panics if either current density is non-positive.
pub fn rescale_remaining_life(remaining: f64, j_old: f64, j_new: f64) -> f64 {
    assert!(
        j_old > 0.0 && j_new > 0.0,
        "current densities must be positive"
    );
    remaining * (j_old / j_new) * (j_old / j_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nominal_operating_point_is_in_the_paper_range() {
        // σ_C median 340 MPa vs σ_T = 240 MPa at j = 1e10 A/m²:
        // a few years (the scale of the paper's Figs. 8-10).
        let tech = Technology::default();
        let t = nucleation_time(&tech, 340e6, 240e6, 1e10);
        let years = t / SECONDS_PER_YEAR;
        assert!(years > 1.0 && years < 20.0, "{years} years");
    }

    #[test]
    fn zero_when_margin_nonpositive() {
        let tech = Technology::default();
        assert_eq!(nucleation_time(&tech, 200e6, 240e6, 1e10), 0.0);
        assert_eq!(nucleation_time(&tech, 240e6, 240e6, 1e10), 0.0);
    }

    #[test]
    fn quadratic_in_margin() {
        let tech = Technology::default();
        let t1 = nucleation_time(&tech, 290e6, 240e6, 1e10); // 50 MPa margin
        let t2 = nucleation_time(&tech, 340e6, 240e6, 1e10); // 100 MPa margin
        assert!((t2 / t1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_square_in_current() {
        let tech = Technology::default();
        let t1 = nucleation_time(&tech, 340e6, 240e6, 1e10);
        let t2 = nucleation_time(&tech, 340e6, 240e6, 2e10);
        assert!((t1 / t2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn package_stress_reduces_ttf() {
        let mut tech = Technology::default();
        let base = nucleation_time(&tech, 340e6, 240e6, 1e10);
        tech.package_stress = 50e6;
        let packaged = nucleation_time(&tech, 340e6, 240e6, 1e10);
        assert!(packaged < base);
        // 100 - 50 MPa margin: a quarter of the TTF.
        assert!((base / packaged - 4.0).abs() < 1e-9);
    }

    #[test]
    fn hotter_is_faster() {
        // Despite kT appearing in the numerator of C_tn, the Arrhenius
        // diffusivity dominates: higher temperature → shorter TTF.
        let cool = Technology {
            operating_temperature_c: 105.0,
            ..Technology::default()
        };
        let hot = Technology {
            operating_temperature_c: 150.0,
            ..Technology::default()
        };
        let t_cool = nucleation_time(&cool, 340e6, 240e6, 1e10);
        let t_hot = nucleation_time(&hot, 340e6, 240e6, 1e10);
        assert!(t_hot < t_cool / 5.0, "{t_hot} vs {t_cool}");
    }

    #[test]
    fn rescaling_identity_and_doubling() {
        assert_eq!(rescale_remaining_life(8.0, 1e10, 1e10), 8.0);
        assert!((rescale_remaining_life(8.0, 1e10, 2e10) - 2.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn ttf_monotone_in_sigma_t(
            sigma_t in 0.0f64..330e6,
            d in 1e6f64..50e6,
        ) {
            let tech = Technology::default();
            let lo = nucleation_time(&tech, 340e6, sigma_t + d, 1e10);
            let hi = nucleation_time(&tech, 340e6, sigma_t, 1e10);
            prop_assert!(lo <= hi);
        }

        #[test]
        fn rescale_composes(
            remaining in 0.1f64..100.0,
            j1 in 1e9f64..1e11,
            j2 in 1e9f64..1e11,
            j3 in 1e9f64..1e11,
        ) {
            // Rescaling j1→j2→j3 equals rescaling j1→j3 directly.
            let two_step = rescale_remaining_life(
                rescale_remaining_life(remaining, j1, j2), j2, j3);
            let one_step = rescale_remaining_life(remaining, j1, j3);
            prop_assert!((two_step - one_step).abs() / one_step < 1e-9);
        }
    }
}
