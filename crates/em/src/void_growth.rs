//! Optional void-growth stage (extension beyond the paper's main model).
//!
//! For Al-era technologies the TTF was `t_n + t_g` — nucleation plus the
//! time for the void to grow to a catastrophic size. The paper (after \[10\])
//! argues that Cu slit voids under vias grow so fast that `TTF ≈ t_n`; this
//! module implements the growth term anyway so that claim can be examined
//! quantitatively (see the `via_mc` bench's growth ablation).

use crate::constants::ELEMENTARY_CHARGE;
use crate::nucleation::diffusivity;
use crate::technology::Technology;

/// Void-growth model: drift-controlled growth at the EM drift velocity
/// `v = D_eff e Z* ρ j / (k_B T Ω^{0}) · Ω ...` — in the standard Korhonen
/// normalization, `v = (D_eff / k_B T) · e Z* ρ_Cu j`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthModel {
    /// Void size at which the via is considered electrically open, m.
    /// For slit voids this is the slit thickness (tens of nanometres); for
    /// legacy wire voids it is the via/wire dimension.
    pub critical_size: f64,
}

impl GrowthModel {
    /// A slit-void model: a thin (10 nm) void severs the via (fast growth,
    /// consistent with the paper's "void growth … is rapid" for Cu).
    pub fn slit() -> Self {
        GrowthModel {
            critical_size: 10e-9,
        }
    }

    /// A legacy wire-spanning model: the void must grow across the via
    /// (paper's Al-era comparison point).
    pub fn spanning(via_width: f64) -> Self {
        GrowthModel {
            critical_size: via_width,
        }
    }

    /// EM drift velocity (m/s) at current density `j` (A/m²).
    pub fn drift_velocity(&self, tech: &Technology, j: f64) -> f64 {
        let force = ELEMENTARY_CHARGE * tech.effective_charge * tech.resistivity * j;
        diffusivity(tech) * force / tech.thermal_energy()
    }

    /// Growth time (seconds) to the critical size at current density `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j <= 0`.
    pub fn growth_time(&self, tech: &Technology, j: f64) -> f64 {
        assert!(j > 0.0, "current density must be positive");
        self.critical_size / self.drift_velocity(tech, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nucleation::{nucleation_time, SECONDS_PER_YEAR};

    #[test]
    fn slit_growth_is_fast_relative_to_nucleation() {
        // This is the quantitative backing for the paper's TTF ≈ t_n claim:
        // at the nominal operating point the 10 nm slit-void growth time is
        // well below the nucleation time.
        let tech = Technology::default();
        let j = 1e10;
        let tn = nucleation_time(&tech, 340e6, 240e6, j);
        let tg = GrowthModel::slit().growth_time(&tech, j);
        assert!(
            tg < 0.2 * tn,
            "tg {} yr vs tn {} yr",
            tg / SECONDS_PER_YEAR,
            tn / SECONDS_PER_YEAR
        );
    }

    #[test]
    fn spanning_growth_dominates_for_large_vias() {
        // A 1 µm legacy void must grow 100× further than a slit: growth can
        // no longer be neglected.
        let tech = Technology::default();
        let j = 1e10;
        let slit = GrowthModel::slit().growth_time(&tech, j);
        let span = GrowthModel::spanning(1e-6).growth_time(&tech, j);
        assert!((span / slit - 100.0).abs() < 1e-9);
    }

    #[test]
    fn growth_time_inverse_in_current() {
        let tech = Technology::default();
        let g = GrowthModel::slit();
        let t1 = g.growth_time(&tech, 1e10);
        let t2 = g.growth_time(&tech, 2e10);
        assert!((t1 / t2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn drift_velocity_positive_and_tiny() {
        let tech = Technology::default();
        let v = GrowthModel::slit().drift_velocity(&tech, 1e10);
        assert!(v > 0.0 && v < 1e-9, "drift velocity {v} m/s");
    }
}
