//! Reporting helpers for the paper's Table 2 and Fig. 10 outputs.

use emgrid_em::SECONDS_PER_YEAR;
use emgrid_stats::Ecdf;
use emgrid_via::FailureCriterion;

use crate::mc::{McResult, SystemCriterion};

/// One row of the paper's Table 2: a benchmark under one (system criterion,
/// via-array criterion) combination.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Benchmark name (PG1/PG2/PG5 profile).
    pub benchmark: String,
    /// Via-array configuration label (e.g. "4x4").
    pub array: String,
    /// System failure criterion.
    pub system: SystemCriterion,
    /// Via-array failure criterion.
    pub via_criterion: FailureCriterion,
    /// Worst-case (0.3%ile) TTF, years.
    pub worst_case_years: f64,
}

impl Table2Row {
    /// Builds a row from a Monte Carlo result.
    pub fn from_result(
        benchmark: impl Into<String>,
        array: impl Into<String>,
        system: SystemCriterion,
        via_criterion: FailureCriterion,
        result: &McResult,
    ) -> Self {
        Table2Row {
            benchmark: benchmark.into(),
            array: array.into(),
            system,
            via_criterion,
            worst_case_years: result.worst_case_years(),
        }
    }
}

impl std::fmt::Display for Table2Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let system = match self.system {
            SystemCriterion::WeakestLink => "weakest-link".to_owned(),
            SystemCriterion::IrDropFraction(p) => format!("{:.0}% IR-drop", p * 100.0),
        };
        write!(
            f,
            "{:<6} {:<5} {:<14} {:<14} {:>6.1}",
            self.benchmark, self.array, system, self.via_criterion, self.worst_case_years
        )
    }
}

/// A TTF percentile curve (the paper's Fig. 10 axes: percentile vs years).
#[derive(Debug, Clone, PartialEq)]
pub struct TtfCurve {
    /// Label shown in the figure legend.
    pub label: String,
    /// `(ttf_years, percentile)` points, percentile in `[0, 1]`.
    pub points: Vec<(f64, f64)>,
}

impl TtfCurve {
    /// Samples a result's ECDF at the paper's Fig. 10 percentiles
    /// (0.003, 0.25, 0.5, 0.75, 0.997) plus a dense fill-in.
    pub fn from_result(label: impl Into<String>, result: &McResult) -> Self {
        Self::from_ecdf(label, &result.ecdf())
    }

    /// Builds a curve from an ECDF of TTFs in seconds.
    pub fn from_ecdf(label: impl Into<String>, ecdf: &Ecdf) -> Self {
        let mut percentiles = vec![0.003, 0.997];
        for i in 1..=19 {
            percentiles.push(i as f64 / 20.0);
        }
        percentiles.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let points = percentiles
            .into_iter()
            .map(|p| (ecdf.quantile(p) / SECONDS_PER_YEAR, p))
            .collect();
        TtfCurve {
            label: label.into(),
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_monotone() {
        let e = Ecdf::new(
            (1..=100)
                .map(|i| i as f64 * SECONDS_PER_YEAR / 10.0)
                .collect(),
        );
        let c = TtfCurve::from_ecdf("t", &e);
        for w in c.points.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(c.points.first().map(|p| p.1), Some(0.003));
        assert_eq!(c.points.last().map(|p| p.1), Some(0.997));
    }

    #[test]
    fn curve_from_result_uses_years() {
        use emgrid_em::SECONDS_PER_YEAR;
        let e = Ecdf::new(vec![SECONDS_PER_YEAR, 2.0 * SECONDS_PER_YEAR]);
        let c = TtfCurve::from_ecdf("u", &e);
        assert!(c.points.iter().all(|&(t, _)| (0.5..=2.5).contains(&t)));
    }

    #[test]
    fn weakest_link_row_formats() {
        let row = Table2Row {
            benchmark: "pg2".into(),
            array: "8x8".into(),
            system: SystemCriterion::WeakestLink,
            via_criterion: FailureCriterion::WeakestLink,
            worst_case_years: 0.9,
        };
        let s = row.to_string();
        assert!(s.contains("weakest-link"));
        assert!(s.contains("0.9"));
    }

    #[test]
    fn table_row_formats() {
        let row = Table2Row {
            benchmark: "pg1".into(),
            array: "4x4".into(),
            system: SystemCriterion::IrDropFraction(0.10),
            via_criterion: FailureCriterion::OpenCircuit,
            worst_case_years: 3.94,
        };
        let s = row.to_string();
        assert!(s.contains("pg1"));
        assert!(s.contains("10% IR-drop"));
        assert!(s.contains("3.9"));
    }
}
