//! Flat (non-hierarchical) Monte Carlo: individual **vias** as the failing
//! components of the whole power grid.
//!
//! The paper's methodology is hierarchical: characterize a via array once,
//! fit a lognormal, and sample that distribution at the grid level. The
//! flat simulation here skips the hierarchy — every via of every array is
//! a component; each via failure bumps its array's resistance by the Eq. 5
//! step (`g → g − g_nom/n`), currents redistribute across the *whole grid*,
//! and all surviving vias rescale. It is far more expensive (the reason
//! the paper introduces the hierarchy) but provides the ground truth the
//! hierarchical results can be validated against on small grids — see the
//! `hierarchical_matches_flat_ground_truth` test.

use emgrid_em::nucleation::{self, rescale_remaining_life};
use emgrid_em::Technology;
use emgrid_sparse::IncrementalSolver;
use emgrid_stats::Ecdf;
use emgrid_stats::Rng;
use emgrid_via::{StressTable, ViaArrayConfig};

use crate::irdrop::IrDropReport;
use crate::mc::SystemCriterion;
use crate::model::{PgError, PowerGrid};

/// System TTF samples from the flat simulation.
#[derive(Debug, Clone)]
pub struct FlatResult {
    ttf_seconds: Vec<f64>,
}

impl FlatResult {
    /// System TTF per trial, seconds.
    pub fn ttf_seconds(&self) -> &[f64] {
        &self.ttf_seconds
    }

    /// Empirical CDF of the system TTF.
    pub fn ecdf(&self) -> Ecdf {
        Ecdf::new(self.ttf_seconds.clone())
    }

    /// Median TTF in years.
    pub fn median_years(&self) -> f64 {
        self.ecdf().median() / emgrid_em::SECONDS_PER_YEAR
    }
}

/// A flat Monte Carlo over every via of every array.
#[derive(Debug, Clone)]
pub struct FlatMc {
    grid: PowerGrid,
    config: ViaArrayConfig,
    tech: Technology,
    sigma_t: Vec<f64>,
    system_criterion: SystemCriterion,
    rebase_interval: usize,
}

impl FlatMc {
    /// Creates a flat simulation with the same via-array configuration at
    /// every site, using the bundled reference stress table.
    ///
    /// # Panics
    ///
    /// Panics if the reference table lacks the configuration.
    pub fn new(grid: PowerGrid, config: ViaArrayConfig, tech: Technology) -> Self {
        let sigma_t = StressTable::reference()
            .lookup(
                config.layer_pair,
                config.pattern,
                config.geometry.rows,
                config.geometry.cols,
                config.wire_width,
            )
            .expect("reference table covers the paper configurations");
        FlatMc {
            grid,
            config,
            tech,
            sigma_t,
            system_criterion: SystemCriterion::IrDropFraction(0.10),
            rebase_interval: 48,
        }
    }

    /// Sets the system failure criterion (default: 10% IR drop).
    pub fn with_system_criterion(mut self, criterion: SystemCriterion) -> Self {
        self.system_criterion = criterion;
        self
    }

    /// Runs `trials` trials.
    ///
    /// # Errors
    ///
    /// Returns [`PgError`] if the base system cannot be factored.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn run(&self, trials: usize, seed: u64) -> Result<FlatResult, PgError> {
        assert!(trials > 0, "need at least one trial");
        let dc = self.grid.dc();
        let base_solver = IncrementalSolver::new(dc.matrix())
            .map_err(|e| PgError::Mna(emgrid_spice::mna::MnaError::Singular(e)))?;
        let base_rhs = dc.rhs().to_vec();
        let mut rng = emgrid_stats::seeded_rng(seed);
        let mut ttf_seconds = Vec::with_capacity(trials);
        for _ in 0..trials {
            ttf_seconds.push(self.one_trial(&mut rng, &base_solver, &base_rhs)?);
        }
        Ok(FlatResult { ttf_seconds })
    }

    fn one_trial(
        &self,
        rng: &mut (impl Rng + ?Sized),
        base_solver: &IncrementalSolver,
        base_rhs: &[f64],
    ) -> Result<f64, PgError> {
        let sites = self.grid.via_sites();
        let m = sites.len();
        let n = self.config.count();
        let area_eff = self.config.effective_area_m2();
        let j_floor = 1e7; // A/m²; guards the 1/j² rescale at idle vias.
        let sc_dist = self.tech.critical_stress_distribution();

        // Per-site state.
        let site_currents = self.grid.via_currents(self.grid.nominal_solution());
        let mut alive = vec![n; m];
        // Via current density at site s: I_s / (alive_s · A_via) =
        // I_s · n / (alive_s · A_eff).
        let j_site = |current: f64, alive: usize| -> f64 {
            (current * n as f64 / (alive as f64 * area_eff)).max(j_floor)
        };
        let mut j: Vec<f64> = site_currents.iter().map(|&i| j_site(i, n)).collect();
        // remaining[s][v], row-major per site.
        let mut remaining: Vec<f64> = (0..m)
            .flat_map(|s| {
                let js = j[s];
                self.sigma_t
                    .iter()
                    .map(move |&st| (s, st, js))
                    .collect::<Vec<_>>()
            })
            .map(|(_, st, js)| nucleation::nucleation_time(&self.tech, sc_dist.sample(rng), st, js))
            .collect();

        if matches!(self.system_criterion, SystemCriterion::WeakestLink) {
            return Ok(remaining.iter().copied().fold(f64::INFINITY, f64::min));
        }
        let SystemCriterion::IrDropFraction(threshold) = self.system_criterion else {
            unreachable!("weakest-link handled above");
        };

        let mut solver = base_solver.clone();
        let rhs = base_rhs.to_vec();
        let dc = self.grid.dc();
        let mut t = 0.0;
        let mut via_alive = vec![true; m * n];
        loop {
            // Earliest alive via anywhere.
            let mut victim = usize::MAX;
            let mut dt = f64::INFINITY;
            for (k, &a) in via_alive.iter().enumerate() {
                if a && remaining[k] < dt {
                    dt = remaining[k];
                    victim = k;
                }
            }
            if victim == usize::MAX {
                return Ok(t); // everything failed without breaching
            }
            t += dt;
            via_alive[victim] = false;
            let s = victim / n;
            alive[s] -= 1;
            for (k, &a) in via_alive.iter().enumerate() {
                if a {
                    remaining[k] = (remaining[k] - dt).max(0.0);
                }
            }

            // Eq. 5 step: each via failure removes g_nom/n of the array's
            // conductance.
            let site = &sites[s];
            let delta_g = -1.0 / (site.resistance * n as f64);
            let ok = match (dc.unknown_index(site.lower), dc.unknown_index(site.upper)) {
                (Some(i), Some(jx)) => solver.update_edge(i, jx, delta_g).is_ok(),
                _ => true, // benchmark grids keep via endpoints unknown
            };
            if !ok {
                return Ok(t);
            }
            if solver.rank() >= self.rebase_interval && solver.rebase().is_err() {
                return Ok(t);
            }
            let x = match solver.solve(&rhs) {
                Ok(x) => x,
                Err(_) => return Ok(t),
            };
            let solution = dc.solution_from_unknowns(&x);
            if IrDropReport::evaluate(&self.grid, &solution).violates(threshold) {
                return Ok(t);
            }

            // Rescale all surviving vias to their new current densities.
            let currents = self.grid.via_currents(&solution);
            for site_idx in 0..m {
                if alive[site_idx] == 0 {
                    continue;
                }
                let j_new = j_site(currents[site_idx], alive[site_idx]);
                if (j_new - j[site_idx]).abs() > 1e-12 {
                    for v in 0..n {
                        let k = site_idx * n + v;
                        if via_alive[k] {
                            remaining[k] = rescale_remaining_life(remaining[k], j[site_idx], j_new);
                        }
                    }
                    j[site_idx] = j_new;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emgrid_fea::geometry::IntersectionPattern;
    use emgrid_spice::benchgen::GridSpec;
    use emgrid_via::{FailureCriterion, ViaArrayMc};

    fn small_grid() -> PowerGrid {
        PowerGrid::from_netlist(GridSpec::custom("flat", 6, 6).generate()).unwrap()
    }

    #[test]
    fn flat_ttfs_are_positive_and_reproducible() {
        let mc = FlatMc::new(
            small_grid(),
            ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
            Technology::default(),
        );
        let a = mc.run(5, 3).unwrap();
        let b = mc.run(5, 3).unwrap();
        assert_eq!(a.ttf_seconds(), b.ttf_seconds());
        assert!(a.ttf_seconds().iter().all(|&t| t > 0.0));
    }

    #[test]
    fn hierarchical_matches_flat_ground_truth() {
        // The paper's central methodological claim, validated: the two-level
        // decomposition (characterize array → sample lognormal at grid
        // level) approximates the flat per-via simulation.
        let tech = Technology::default();
        let config = ViaArrayConfig::paper_4x4(IntersectionPattern::Plus);

        let flat = FlatMc::new(small_grid(), config, tech).run(25, 11).unwrap();

        let rel = ViaArrayMc::from_reference_table(&config, tech, 1e10)
            .characterize(400, 12)
            .reliability(FailureCriterion::OpenCircuit)
            .unwrap();
        let hierarchical = crate::mc::PowerGridMc::new(small_grid(), rel)
            .run(25, 11)
            .unwrap();

        let ratio = hierarchical.median_years() / flat.median_years();
        assert!(
            (0.5..2.0).contains(&ratio),
            "hierarchical {} yr vs flat {} yr (ratio {ratio})",
            hierarchical.median_years(),
            flat.median_years()
        );
    }

    #[test]
    fn flat_weakest_link_is_the_global_minimum_via() {
        let mc = FlatMc::new(
            small_grid(),
            ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
            Technology::default(),
        )
        .with_system_criterion(SystemCriterion::WeakestLink);
        let r = mc.run(10, 7).unwrap();
        // Minimum over 36 sites × 16 vias: comfortably below a year at
        // these currents.
        assert!(r.median_years() < 3.0);
        assert!(r.ttf_seconds().iter().all(|&t| t > 0.0));
    }
}
