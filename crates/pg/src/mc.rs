//! Level-2 Monte Carlo: Algorithm 1 with **via arrays** as the components
//! of a **power grid** system.
//!
//! Each trial samples a TTF for every via array from its precharacterized
//! lognormal (rescaled to the array's local current), then plays failures
//! forward. A failed array's conductance is removed from the grid — a
//! rank-1 update applied through the Sherman–Morrison–Woodbury incremental
//! solver — the IR drop is re-evaluated, and surviving arrays' remaining
//! lives rescale with their new currents. The trial ends when the system
//! criterion (weakest link or an IR-drop threshold) is breached; the system
//! TTF is the failure time of the last component that caused the breach.

use emgrid_em::nucleation::rescale_remaining_life;
use emgrid_runtime::{
    run_trials_session, CancelToken, RunReport, RuntimeConfig, SessionState, TrialSession,
};
use emgrid_sparse::{FactorOptions, IncrementalSolver, LdlFactor, TripletMatrix};
use emgrid_stats::Ecdf;
use emgrid_stats::Rng;
use emgrid_via::variation::{
    random_walk_field, CHANNEL_FIELD, CHANNEL_GEOMETRY, CHANNEL_VOID, MIN_RELATIVE_WIDTH,
};
use emgrid_via::ViaArrayReliability;

use crate::checkpoint::GridCheckpoint;
use crate::irdrop::IrDropReport;
use crate::model::{PgError, PowerGrid};

/// System TTF plus the ordered indices of the sites that failed, for one trial.
type TrialOutcome = (f64, Vec<usize>);

/// When the power grid itself is declared failed (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SystemCriterion {
    /// Failed at the first via-array failure.
    WeakestLink,
    /// Failed when the worst IR drop reaches this fraction of Vdd
    /// (the paper uses 0.10).
    IrDropFraction(f64),
}

/// How the grid is re-solved after each failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverStrategy {
    /// Sherman–Morrison–Woodbury incremental updates against the base
    /// factorization, folding updates into a fresh factorization every
    /// `rebase_interval` failures.
    Incremental {
        /// Rank at which accumulated updates are folded and refactored.
        rebase_interval: usize,
    },
    /// Full sparse refactorization after every failure (the baseline the
    /// `smw_ablation` bench compares against).
    Refactor,
}

impl Default for SolverStrategy {
    fn default() -> Self {
        SolverStrategy::Incremental {
            rebase_interval: 64,
        }
    }
}

/// How via-array characterizations are assigned to grid sites.
///
/// The paper uses one configuration for every array but notes "in practice,
/// a combination of the via array configuration can be used"; the
/// two-tier assignment implements that extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SiteAssignment {
    /// The same characterization at every site (the paper's setup).
    Uniform(ViaArrayReliability),
    /// Two-tier: a site whose nominal current density (through the `low`
    /// configuration's conducting area) reaches `threshold` A/m² receives
    /// the `high` (beefier) array instead.
    ByCurrentDensity {
        /// Current density (A/m²) at which a site is upgraded.
        threshold: f64,
        /// Default configuration.
        low: ViaArrayReliability,
        /// Upgraded configuration for hot sites.
        high: ViaArrayReliability,
    },
}

/// Site-level on-die variation for the grid Monte Carlo.
///
/// Sampled once per trial as spatially correlated random-walk fields over
/// the via-site index (nearby sites share their walk prefix — the
/// 1712.05562 on-die variation shape), from sub-streams independent of the
/// lifetime draws. The grid level works with fitted lifetime
/// distributions, so the temperature field enters as a ln-TTF sigma
/// (first order: `E_a/(k_B·T²)·σ_T`, see
/// [`emgrid_via::Variation::grid_ttf_ln_sigma`]) rather than through the
/// Arrhenius law directly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GridVariation {
    /// Per-site ln-TTF standard deviation contributed by the correlated
    /// temperature field; `0` disables it.
    pub ttf_ln_sigma: f64,
    /// Relative standard deviation of the correlated per-site linewidth
    /// multiplier (a narrower site sees a higher current density); `0`
    /// disables it.
    pub linewidth_sigma: f64,
}

/// One trial's sampled per-site fields.
struct SiteFields {
    /// Multiplier on each site's drawn lifetime (hotter → below one).
    life_scale: Vec<f64>,
    /// Multiplier on each site's current density (narrower → above one).
    inv_width: Vec<f64>,
}

impl SiteFields {
    fn sample(
        var: &GridVariation,
        sites: usize,
        field_rng: &mut (impl Rng + ?Sized),
        geom_rng: &mut (impl Rng + ?Sized),
    ) -> SiteFields {
        let life_scale = if var.ttf_ln_sigma > 0.0 {
            random_walk_field(sites, field_rng)
                .iter()
                .map(|&f| (-var.ttf_ln_sigma * f).exp())
                .collect()
        } else {
            vec![1.0; sites]
        };
        let inv_width = if var.linewidth_sigma > 0.0 {
            random_walk_field(sites, geom_rng)
                .iter()
                .map(|&f| 1.0 / (1.0 + var.linewidth_sigma * f).max(MIN_RELATIVE_WIDTH))
                .collect()
        } else {
            vec![1.0; sites]
        };
        SiteFields {
            life_scale,
            inv_width,
        }
    }
}

/// Checkpoint/resume/cancellation controls for one
/// [`PowerGridMc::run_session`] call; the default is a plain fresh run.
#[derive(Default)]
pub struct GridSession<'a> {
    /// Checkpoint to resume from (`None` = start at trial zero).
    pub resume: Option<GridCheckpoint>,
    /// Cooperative cancellation token, polled between trials.
    pub cancel: Option<&'a CancelToken>,
    /// Trials between checkpoint callbacks; 0 disables periodic
    /// checkpointing (a final checkpoint still fires on cancellation).
    pub checkpoint_every: usize,
    /// Receives a snapshot of the committed state at each checkpoint.
    #[allow(clippy::type_complexity)]
    pub on_checkpoint: Option<&'a mut (dyn FnMut(&GridCheckpoint) + 'a)>,
}

/// The collected system TTFs of a power-grid Monte Carlo run.
#[derive(Debug, Clone)]
pub struct McResult {
    ttf_seconds: Vec<f64>,
    failures_per_trial: Vec<usize>,
    site_failure_counts: Vec<usize>,
    report: RunReport,
}

impl McResult {
    /// System TTF per trial, seconds.
    pub fn ttf_seconds(&self) -> &[f64] {
        &self.ttf_seconds
    }

    /// Execution telemetry: trials run vs requested, threads, early-stop
    /// outcome, wall-clock, and the streamed `ln TTF` statistics.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Number of via-array failures each trial took to breach the system
    /// criterion.
    pub fn failures_per_trial(&self) -> &[usize] {
        &self.failures_per_trial
    }

    /// Empirical CDF of the system TTF (the paper's Fig. 10 curves).
    pub fn ecdf(&self) -> Ecdf {
        Ecdf::new(self.ttf_seconds.clone())
    }

    /// The paper's "worst-case TTF": the 0.3 percentile, in years.
    pub fn worst_case_years(&self) -> f64 {
        self.ecdf().worst_case() / emgrid_em::SECONDS_PER_YEAR
    }

    /// Median TTF in years.
    pub fn median_years(&self) -> f64 {
        self.ecdf().median() / emgrid_em::SECONDS_PER_YEAR
    }

    /// Mean number of failures per trial.
    pub fn mean_failures(&self) -> f64 {
        self.failures_per_trial.iter().sum::<usize>() as f64
            / self.failures_per_trial.len().max(1) as f64
    }

    /// How many trials each via site failed in before the system criterion
    /// tripped (indexed like [`PowerGrid::via_sites`]).
    pub fn site_failure_counts(&self) -> &[usize] {
        &self.site_failure_counts
    }

    /// The most frequently failing via sites, most critical first — the
    /// arrays a designer would upgrade (see `SiteAssignment`).
    pub fn critical_sites(&self, top: usize) -> Vec<(usize, usize)> {
        let mut ranked: Vec<(usize, usize)> = self
            .site_failure_counts
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(top);
        ranked
    }
}

/// A configured level-2 Monte Carlo.
#[derive(Debug, Clone)]
pub struct PowerGridMc {
    grid: PowerGrid,
    assignment: SiteAssignment,
    system_criterion: SystemCriterion,
    solver: SolverStrategy,
    /// Sparse factorization configuration for the grid conductance solves
    /// (base factor, SMW rebases, and full refactorizations).
    factor: FactorOptions,
    /// Lower bound on per-array current density, as a fraction of the
    /// characterization reference (guards the 1/j² rescale against
    /// near-zero via currents).
    current_floor_fraction: f64,
    /// Optional via-site subset (indexed like [`PowerGrid::via_sites`]):
    /// `None` simulates every site; otherwise only flagged sites sample
    /// lifetimes and may fail.
    active: Option<Vec<bool>>,
    /// Optional site-level on-die variation: `None` keeps the legacy
    /// single-stream trials bit-identical with pre-variation builds.
    variation: Option<GridVariation>,
}

impl PowerGridMc {
    /// Creates a Monte Carlo using one via-array characterization for every
    /// site (as the paper does: "we select one configuration for a given
    /// power grid and use this configuration for all the via arrays").
    pub fn new(grid: PowerGrid, reliability: ViaArrayReliability) -> Self {
        PowerGridMc {
            grid,
            assignment: SiteAssignment::Uniform(reliability),
            system_criterion: SystemCriterion::IrDropFraction(0.10),
            solver: SolverStrategy::default(),
            factor: FactorOptions::default(),
            current_floor_fraction: 1e-3,
            active: None,
            variation: None,
        }
    }

    /// Restricts the Monte Carlo to a subset of via sites — the
    /// filter-then-simulate contract with the screening prefilter. Only the
    /// listed sites sample lifetimes and become failure candidates; the
    /// rest are treated as immortal (their conductance never changes).
    /// Passing every site index reproduces the unfiltered run bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of range.
    pub fn with_active_sites(mut self, indices: &[usize]) -> Self {
        let m = self.grid.via_sites().len();
        assert!(
            !indices.is_empty(),
            "active-site filter needs at least one site"
        );
        let mut active = vec![false; m];
        for &k in indices {
            assert!(k < m, "active site index {k} out of range ({m} sites)");
            active[k] = true;
        }
        self.active = Some(active);
        self
    }

    /// Sets the system failure criterion (default: 10% IR drop).
    pub fn with_system_criterion(mut self, criterion: SystemCriterion) -> Self {
        self.system_criterion = criterion;
        self
    }

    /// Sets the re-solve strategy (default: incremental SMW).
    pub fn with_solver(mut self, solver: SolverStrategy) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the sparse factorization options used for every grid
    /// conductance solve (default: AMD ordering, supernodal numeric). The
    /// choice changes wall time, never the failure statistics' semantics.
    pub fn with_factor_options(mut self, factor: FactorOptions) -> Self {
        self.factor = factor;
        self
    }

    /// Sets a per-site assignment strategy (default: uniform).
    pub fn with_assignment(mut self, assignment: SiteAssignment) -> Self {
        self.assignment = assignment;
        self
    }

    /// Enables site-level on-die variation: trials draw lifetime,
    /// temperature-field, and linewidth-field samples from independent
    /// derived sub-streams (default: nominal model).
    pub fn with_variation(mut self, variation: GridVariation) -> Self {
        self.variation = Some(variation);
        self
    }

    /// The configured variation, if any.
    pub fn variation(&self) -> Option<&GridVariation> {
        self.variation.as_ref()
    }

    /// The grid under analysis.
    pub fn grid(&self) -> &PowerGrid {
        &self.grid
    }

    /// Resolves the assignment to one characterization per via site, using
    /// the nominal (failure-free) via currents.
    pub fn site_reliabilities(&self) -> Vec<ViaArrayReliability> {
        let currents = self.grid.via_currents(self.grid.nominal_solution());
        currents
            .iter()
            .map(|i| match self.assignment {
                SiteAssignment::Uniform(rel) => rel,
                SiteAssignment::ByCurrentDensity {
                    threshold,
                    low,
                    high,
                } => {
                    if i / low.config.effective_area_m2() >= threshold {
                        high
                    } else {
                        low
                    }
                }
            })
            .collect()
    }

    /// Runs `trials` trials with a deterministic seed.
    ///
    /// Sequential, fixed-budget shorthand for [`PowerGridMc::run_with`].
    ///
    /// # Errors
    ///
    /// Returns [`PgError`] if the base system cannot be factored.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn run(&self, trials: usize, seed: u64) -> Result<McResult, PgError> {
        self.run_with(trials, seed, &RuntimeConfig::sequential())
    }

    /// Runs `trials` trials split across `threads` OS threads.
    ///
    /// Shorthand for [`PowerGridMc::run_with`] without early termination.
    ///
    /// # Errors
    ///
    /// Returns [`PgError`] if the base system cannot be factored.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `threads == 0`.
    pub fn run_threaded(
        &self,
        trials: usize,
        seed: u64,
        threads: usize,
    ) -> Result<McResult, PgError> {
        self.run_with(trials, seed, &RuntimeConfig::threaded(threads))
    }

    /// Runs the grid-level Monte Carlo on the shared work-stealing runtime.
    ///
    /// Each trial draws from its own RNG stream derived from
    /// `(seed, trial)`, and the scheduler commits results in trial order,
    /// so the result is **bit-identical for any thread count** (and to
    /// [`PowerGridMc::run`] with the same seed). With an early-stop policy
    /// the run halts once the confidence interval on the mean system
    /// `ln TTF` is tight enough; [`McResult::report`] records what ran.
    ///
    /// # Errors
    ///
    /// Returns [`PgError`] if the base system cannot be factored, or the
    /// error of the lowest-indexed failing trial.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`, and re-raises a trial panic tagged with its
    /// trial index.
    pub fn run_with(
        &self,
        trials: usize,
        seed: u64,
        runtime: &RuntimeConfig,
    ) -> Result<McResult, PgError> {
        self.run_session(trials, seed, runtime, GridSession::default())
    }

    /// [`PowerGridMc::run_with`] with checkpoint/resume/cancellation
    /// controls — the entry point the analysis daemon drives.
    ///
    /// Because every trial derives its randomness from `(seed, trial)`
    /// alone and checkpoints capture the committed prefix bit-exactly
    /// ([`GridCheckpoint`]), a run resumed from a checkpoint produces the
    /// same [`McResult`] as one that was never interrupted — including the
    /// early-termination point under an early-stop policy. A cancelled run
    /// returns the committed prefix with `report().cancelled` set (after a
    /// final checkpoint callback).
    ///
    /// # Errors
    ///
    /// As [`PowerGridMc::run_with`].
    ///
    /// # Panics
    ///
    /// As [`PowerGridMc::run_with`], plus if the resume checkpoint is
    /// inconsistent (more trials than the budget, or a stream count that
    /// does not match its outcomes).
    pub fn run_session(
        &self,
        trials: usize,
        seed: u64,
        runtime: &RuntimeConfig,
        session: GridSession<'_>,
    ) -> Result<McResult, PgError> {
        assert!(trials > 0, "need at least one trial");
        let _span = emgrid_runtime::obs::span("grid-mc");
        let dc = self.grid.dc();
        let base_solver = IncrementalSolver::with_options(dc.matrix(), &self.factor)
            .map_err(|e| PgError::Mna(emgrid_spice::mna::MnaError::Singular(e)))?;
        let base_rhs = dc.rhs().to_vec();
        let site_rels = self.site_reliabilities();
        let nominal_currents = self.grid.via_currents(self.grid.nominal_solution());
        let nominal_j: Vec<f64> = nominal_currents
            .iter()
            .zip(&site_rels)
            .map(|(i, rel)| {
                let j_floor = rel.reference_current_density * self.current_floor_fraction;
                (i / rel.config.effective_area_m2()).max(j_floor)
            })
            .collect();

        let mut on_checkpoint = session.on_checkpoint;
        let mut adapter = |outputs: &[TrialOutcome], stream: &emgrid_stats::OnlineStats| {
            if let Some(cb) = on_checkpoint.as_mut() {
                cb(&GridCheckpoint {
                    outcomes: outputs.to_vec(),
                    stream: *stream,
                });
            }
        };
        let trial_session = TrialSession {
            resume: session.resume.map(|cp| SessionState {
                outputs: cp.outcomes,
                stream: cp.stream,
            }),
            cancel: session.cancel,
            checkpoint_every: session.checkpoint_every,
            on_checkpoint: Some(&mut adapter),
        };
        let (outcomes, report) = run_trials_session(
            trials,
            runtime,
            trial_session,
            |t| self.run_one_trial(seed, t, &base_solver, &base_rhs, &nominal_j, &site_rels),
            |(ttf, _): &(f64, Vec<usize>)| ttf.max(f64::MIN_POSITIVE).ln(),
        )?;

        let mut ttf_seconds = Vec::with_capacity(outcomes.len());
        let mut failures_per_trial = Vec::with_capacity(outcomes.len());
        let mut site_failure_counts = vec![0usize; self.grid.via_sites().len()];
        for (ttf, failed_sites) in outcomes {
            ttf_seconds.push(ttf);
            failures_per_trial.push(failed_sites.len());
            for k in failed_sites {
                site_failure_counts[k] += 1;
            }
        }
        Ok(McResult {
            ttf_seconds,
            failures_per_trial,
            site_failure_counts,
            report,
        })
    }

    /// Static-chunking baseline kept for the scheduling ablation in the
    /// `pg_mc` bench: trials are pre-assigned to threads in contiguous
    /// chunks instead of claimed from the work-stealing counter. It uses
    /// the same per-trial RNG streams as [`PowerGridMc::run_with`], so the
    /// `McResult` is identical — only wall-clock differs (work stealing
    /// wins when trial costs vary, because no thread idles behind the
    /// longest chunk).
    ///
    /// # Errors
    ///
    /// Returns [`PgError`] if the base system cannot be factored or any
    /// trial fails.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `threads == 0`.
    pub fn run_static_chunked(
        &self,
        trials: usize,
        seed: u64,
        threads: usize,
    ) -> Result<McResult, PgError> {
        assert!(trials > 0, "need at least one trial");
        assert!(threads > 0, "need at least one thread");
        let dc = self.grid.dc();
        let base_solver = IncrementalSolver::with_options(dc.matrix(), &self.factor)
            .map_err(|e| PgError::Mna(emgrid_spice::mna::MnaError::Singular(e)))?;
        let base_rhs = dc.rhs().to_vec();
        let site_rels = self.site_reliabilities();
        let nominal_currents = self.grid.via_currents(self.grid.nominal_solution());
        let nominal_j: Vec<f64> = nominal_currents
            .iter()
            .zip(&site_rels)
            .map(|(i, rel)| {
                let j_floor = rel.reference_current_density * self.current_floor_fraction;
                (i / rel.config.effective_area_m2()).max(j_floor)
            })
            .collect();

        let run_range = |range: std::ops::Range<usize>| -> Result<Vec<TrialOutcome>, PgError> {
            range
                .map(|t| {
                    self.run_one_trial(seed, t, &base_solver, &base_rhs, &nominal_j, &site_rels)
                })
                .collect()
        };
        let chunk = trials.div_ceil(threads);
        let results: Vec<Result<Vec<TrialOutcome>, PgError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let start = (w * chunk).min(trials);
                    let end = ((w + 1) * chunk).min(trials);
                    let run_range = &run_range;
                    scope.spawn(move || run_range(start..end))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let mut outcomes = Vec::with_capacity(trials);
        for r in results {
            outcomes.extend(r?);
        }

        let mut ttf_seconds = Vec::with_capacity(outcomes.len());
        let mut failures_per_trial = Vec::with_capacity(outcomes.len());
        let mut site_failure_counts = vec![0usize; self.grid.via_sites().len()];
        for (ttf, failed_sites) in outcomes {
            ttf_seconds.push(ttf);
            failures_per_trial.push(failed_sites.len());
            for k in failed_sites {
                site_failure_counts[k] += 1;
            }
        }
        Ok(McResult {
            ttf_seconds,
            failures_per_trial,
            site_failure_counts,
            report: RunReport::unscheduled(trials),
        })
    }

    /// Dispatches one trial on its `(seed, trial)` randomness: the legacy
    /// single stream for the nominal model, or three derived sub-streams
    /// (lifetimes / temperature field / linewidth field) under variation.
    fn run_one_trial(
        &self,
        seed: u64,
        t: usize,
        base_solver: &IncrementalSolver,
        base_rhs: &[f64],
        nominal_j: &[f64],
        site_rels: &[ViaArrayReliability],
    ) -> Result<(f64, Vec<usize>), PgError> {
        match &self.variation {
            None => {
                let mut rng = emgrid_stats::stream_rng(seed, t as u64);
                self.one_trial(&mut rng, base_solver, base_rhs, nominal_j, site_rels, None)
            }
            Some(var) => {
                let s = t as u64;
                let mut void_rng = emgrid_stats::substream_rng(seed, s, CHANNEL_VOID);
                let mut field_rng = emgrid_stats::substream_rng(seed, s, CHANNEL_FIELD);
                let mut geom_rng = emgrid_stats::substream_rng(seed, s, CHANNEL_GEOMETRY);
                let fields = SiteFields::sample(
                    var,
                    self.grid.via_sites().len(),
                    &mut field_rng,
                    &mut geom_rng,
                );
                self.one_trial(
                    &mut void_rng,
                    base_solver,
                    base_rhs,
                    nominal_j,
                    site_rels,
                    Some(&fields),
                )
            }
        }
    }

    fn one_trial(
        &self,
        rng: &mut (impl Rng + ?Sized),
        base_solver: &IncrementalSolver,
        base_rhs: &[f64],
        nominal_j: &[f64],
        site_rels: &[ViaArrayReliability],
        fields: Option<&SiteFields>,
    ) -> Result<(f64, Vec<usize>), PgError> {
        let sites = self.grid.via_sites();
        let m = sites.len();
        let is_active = |k: usize| self.active.as_ref().is_none_or(|a| a[k]);
        let mut j: Vec<f64> = nominal_j.to_vec();
        if let Some(f) = fields {
            for (jk, w) in j.iter_mut().zip(&f.inv_width) {
                *jk *= w;
            }
        }
        // Inactive (screened-out) sites draw no lifetime: they are immortal
        // and consume no randomness, so a run over the selected subset is a
        // function of the subset alone.
        let mut remaining: Vec<f64> = (0..m)
            .map(|k| {
                if is_active(k) {
                    let ttf = site_rels[k].sample_ttf(j[k], rng);
                    match fields {
                        Some(f) => ttf * f.life_scale[k],
                        None => ttf,
                    }
                } else {
                    f64::INFINITY
                }
            })
            .collect();

        // Weakest-link system criterion: no electrical updates needed.
        if matches!(self.system_criterion, SystemCriterion::WeakestLink) {
            let (victim, ttf) = remaining
                .iter()
                .copied()
                .enumerate()
                .filter(|&(k, _)| is_active(k))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite lifetimes"))
                .expect("at least one active site");
            return Ok((ttf, vec![victim]));
        }
        let SystemCriterion::IrDropFraction(threshold) = self.system_criterion else {
            unreachable!("weakest-link handled above");
        };

        let mut alive: Vec<bool> = (0..m).map(is_active).collect();
        let mut rhs = base_rhs.to_vec();
        let mut solver = base_solver.clone();
        let mut failed_sites: Vec<usize> = Vec::new();
        let mut t = 0.0;
        let dc = self.grid.dc();
        loop {
            let Some((victim, dt)) = alive
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a)
                .map(|(k, _)| (k, remaining[k]))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite lifetimes"))
            else {
                // Every array failed without breaching the threshold (only
                // possible on grids whose loads keep paths through wires).
                return Ok((t, failed_sites));
            };
            t += dt;
            alive[victim] = false;
            failed_sites.push(victim);
            for k in 0..m {
                if alive[k] {
                    remaining[k] = (remaining[k] - dt).max(0.0);
                }
            }

            // Remove the failed array's conductance and re-solve.
            let site = &sites[victim];
            let g = 1.0 / site.resistance;
            let update_ok = match self.solver {
                SolverStrategy::Incremental { rebase_interval } => {
                    let ok = match (dc.unknown_index(site.lower), dc.unknown_index(site.upper)) {
                        (Some(i), Some(jx)) => solver.update_edge(i, jx, -g).is_ok(),
                        (Some(i), None) => {
                            let pin = dc
                                .pinned_voltage(site.upper)
                                .expect("non-unknown node is pinned");
                            rhs[i] -= g * pin;
                            solver.update_ground(i, -g).is_ok()
                        }
                        (None, Some(jx)) => {
                            let pin = dc
                                .pinned_voltage(site.lower)
                                .expect("non-unknown node is pinned");
                            rhs[jx] -= g * pin;
                            solver.update_ground(jx, -g).is_ok()
                        }
                        (None, None) => true,
                    };
                    if ok && solver.rank() >= rebase_interval {
                        solver.rebase().is_ok()
                    } else {
                        ok
                    }
                }
                SolverStrategy::Refactor => {
                    // Refactor path updates rhs for pinned endpoints too.
                    match (dc.unknown_index(site.lower), dc.unknown_index(site.upper)) {
                        (Some(i), None) => {
                            let pin = dc.pinned_voltage(site.upper).expect("pinned");
                            rhs[i] -= g * pin;
                        }
                        (None, Some(jx)) => {
                            let pin = dc.pinned_voltage(site.lower).expect("pinned");
                            rhs[jx] -= g * pin;
                        }
                        _ => {}
                    }
                    true
                }
            };
            if !update_ok {
                // The failure disconnected part of the grid from every pad:
                // the supply to those loads is gone — system failure.
                return Ok((t, failed_sites));
            }

            let x = match self.solver {
                SolverStrategy::Incremental { .. } => match solver.solve(&rhs) {
                    Ok(x) => x,
                    Err(_) => return Ok((t, failed_sites)),
                },
                SolverStrategy::Refactor => match self.refactor_solve(&failed_sites, &rhs) {
                    Ok(x) => x,
                    Err(_) => return Ok((t, failed_sites)),
                },
            };
            let solution = dc.solution_from_unknowns(&x);
            let report = IrDropReport::evaluate(&self.grid, &solution);
            if report.violates(threshold) {
                return Ok((t, failed_sites));
            }

            // Rescale survivors to their new currents (TTF ∝ 1/j²).
            let currents = self.grid.via_currents(&solution);
            for k in 0..m {
                if alive[k] {
                    let rel = &site_rels[k];
                    let j_floor = rel.reference_current_density * self.current_floor_fraction;
                    let mut j_new = (currents[k] / rel.config.effective_area_m2()).max(j_floor);
                    if let Some(f) = fields {
                        j_new *= f.inv_width[k];
                    }
                    remaining[k] = rescale_remaining_life(remaining[k], j[k], j_new);
                    j[k] = j_new;
                }
            }
        }
    }

    /// Full refactorization solve with the given failed sites removed.
    fn refactor_solve(
        &self,
        failed_sites: &[usize],
        rhs: &[f64],
    ) -> Result<Vec<f64>, emgrid_sparse::SparseError> {
        let dc = self.grid.dc();
        let base = dc.matrix();
        let n = base.rows();
        let mut t = TripletMatrix::with_capacity(n, n, base.nnz() + failed_sites.len() * 4);
        for r in 0..n {
            for (c, v) in base.row(r) {
                t.push(r, c, v);
            }
        }
        for &k in failed_sites {
            let site = &self.grid.via_sites()[k];
            let g = 1.0 / site.resistance;
            match (dc.unknown_index(site.lower), dc.unknown_index(site.upper)) {
                (Some(i), Some(j)) => {
                    t.push(i, i, -g);
                    t.push(j, j, -g);
                    t.push(i, j, g);
                    t.push(j, i, g);
                }
                (Some(i), None) | (None, Some(i)) => {
                    t.push(i, i, -g);
                }
                (None, None) => {}
            }
        }
        Ok(LdlFactor::factor_with(&t.to_csr(), &self.factor)?.solve(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emgrid_em::Technology;
    use emgrid_fea::geometry::IntersectionPattern;
    use emgrid_spice::benchgen::GridSpec;
    use emgrid_via::{FailureCriterion, ViaArrayConfig, ViaArrayMc};

    fn reliability(criterion: FailureCriterion) -> ViaArrayReliability {
        ViaArrayMc::from_reference_table(
            &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
            Technology::default(),
            1e10,
        )
        .characterize(300, 99)
        .reliability(criterion)
        .unwrap()
    }

    fn small_grid() -> PowerGrid {
        PowerGrid::from_netlist(GridSpec::custom("t", 10, 10).generate()).unwrap()
    }

    #[test]
    fn ir_drop_criterion_outlives_weakest_link() {
        // The central claim of Fig. 10: performance-based system criteria
        // give longer lifetimes than the weakest link.
        let rel = reliability(FailureCriterion::OpenCircuit);
        let weakest = PowerGridMc::new(small_grid(), rel)
            .with_system_criterion(SystemCriterion::WeakestLink)
            .run(40, 5)
            .unwrap();
        let ir = PowerGridMc::new(small_grid(), rel)
            .with_system_criterion(SystemCriterion::IrDropFraction(0.10))
            .run(40, 5)
            .unwrap();
        assert!(ir.median_years() > weakest.median_years());
        assert!(ir.mean_failures() > 1.0);
        assert!((weakest.mean_failures() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stricter_array_criterion_shortens_system_life() {
        // Via-array weakest-link vs open-circuit at the system IR criterion.
        let weak_rel = reliability(FailureCriterion::WeakestLink);
        let open_rel = reliability(FailureCriterion::OpenCircuit);
        let weak = PowerGridMc::new(small_grid(), weak_rel).run(40, 7).unwrap();
        let open = PowerGridMc::new(small_grid(), open_rel).run(40, 7).unwrap();
        assert!(open.median_years() > weak.median_years());
    }

    #[test]
    fn smw_and_refactor_agree() {
        let rel = reliability(FailureCriterion::OpenCircuit);
        let smw = PowerGridMc::new(small_grid(), rel)
            .with_solver(SolverStrategy::Incremental { rebase_interval: 8 })
            .run(15, 11)
            .unwrap();
        let refactor = PowerGridMc::new(small_grid(), rel)
            .with_solver(SolverStrategy::Refactor)
            .run(15, 11)
            .unwrap();
        for (a, b) in smw.ttf_seconds().iter().zip(refactor.ttf_seconds()) {
            assert!(
                (a - b).abs() / a < 1e-6,
                "smw {a} vs refactor {b} (same seed must agree)"
            );
        }
    }

    #[test]
    fn critical_sites_concentrate_near_the_hotspot() {
        // The hotspot loads the central vias hardest; they should dominate
        // the failure histogram.
        let rel = reliability(FailureCriterion::OpenCircuit);
        let grid = small_grid();
        let n_sites = grid.via_sites().len();
        let r = PowerGridMc::new(grid, rel).run(30, 19).unwrap();
        assert_eq!(r.site_failure_counts().len(), n_sites);
        let total: usize = r.site_failure_counts().iter().sum();
        let trial_failures: usize = r.failures_per_trial().iter().sum();
        assert_eq!(total, trial_failures);
        let critical = r.critical_sites(5);
        assert_eq!(critical.len(), 5);
        // Ranked non-increasing.
        for w in critical.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The most critical site fails in most trials.
        assert!(critical[0].1 >= 20, "top site count {}", critical[0].1);
    }

    #[test]
    fn weakest_link_records_the_single_victim() {
        let rel = reliability(FailureCriterion::OpenCircuit);
        let r = PowerGridMc::new(small_grid(), rel)
            .with_system_criterion(SystemCriterion::WeakestLink)
            .run(25, 23)
            .unwrap();
        let total: usize = r.site_failure_counts().iter().sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn threaded_run_matches_sequential() {
        let rel = reliability(FailureCriterion::OpenCircuit);
        let seq = PowerGridMc::new(small_grid(), rel).run(16, 41).unwrap();
        let par = PowerGridMc::new(small_grid(), rel)
            .run_threaded(16, 41, 4)
            .unwrap();
        assert_eq!(seq.ttf_seconds(), par.ttf_seconds());
        assert_eq!(seq.site_failure_counts(), par.site_failure_counts());
    }

    #[test]
    fn static_chunking_matches_work_stealing() {
        // The scheduling ablation baseline must produce the same result —
        // only wall-clock may differ.
        let rel = reliability(FailureCriterion::OpenCircuit);
        let ws = PowerGridMc::new(small_grid(), rel)
            .run_threaded(16, 41, 4)
            .unwrap();
        let chunked = PowerGridMc::new(small_grid(), rel)
            .run_static_chunked(16, 41, 4)
            .unwrap();
        assert_eq!(ws.ttf_seconds(), chunked.ttf_seconds());
        assert_eq!(ws.site_failure_counts(), chunked.site_failure_counts());
    }

    #[test]
    fn early_stop_agrees_with_full_budget_within_ci() {
        // An early-terminated run's fitted mean ln TTF must land inside the
        // advertised confidence interval of the full-budget run.
        let rel = reliability(FailureCriterion::OpenCircuit);
        let full = PowerGridMc::new(small_grid(), rel).run(120, 77).unwrap();
        let es = emgrid_runtime::EarlyStop {
            target_half_width: 0.2,
            confidence: 0.95,
            min_trials: 16,
            batch: 16,
        };
        let stopped = PowerGridMc::new(small_grid(), rel)
            .run_with(120, 77, &RuntimeConfig::sequential().with_early_stop(es))
            .unwrap();
        assert!(stopped.report().stopped_early);
        assert!(stopped.ttf_seconds().len() < full.ttf_seconds().len());
        // Early-stopped trials are a prefix of the full run.
        assert_eq!(
            stopped.ttf_seconds(),
            &full.ttf_seconds()[..stopped.ttf_seconds().len()]
        );
        let diff = (stopped.report().stream.mean() - full.report().stream.mean()).abs();
        let hw = stopped.report().achieved_half_width(0.95);
        assert!(diff <= hw, "mean moved {diff} > advertised half-width {hw}");
    }

    #[test]
    fn results_are_reproducible() {
        let rel = reliability(FailureCriterion::OpenCircuit);
        let a = PowerGridMc::new(small_grid(), rel).run(10, 3).unwrap();
        let b = PowerGridMc::new(small_grid(), rel).run(10, 3).unwrap();
        assert_eq!(a.ttf_seconds(), b.ttf_seconds());
    }

    #[test]
    fn mixed_assignment_interpolates_between_uniform_configs() {
        // Hot sites upgraded to 8x8 should land the system TTF between
        // uniform-4x4 and uniform-8x8 (the paper's "combination" remark).
        let rel4 = reliability(FailureCriterion::OpenCircuit);
        let rel8 = ViaArrayMc::from_reference_table(
            &ViaArrayConfig::paper_8x8(IntersectionPattern::Plus),
            Technology::default(),
            1e10,
        )
        .characterize(300, 99)
        .reliability(FailureCriterion::OpenCircuit)
        .unwrap();
        let run = |assignment: SiteAssignment| {
            PowerGridMc::new(small_grid(), rel4)
                .with_assignment(assignment)
                .run(25, 31)
                .unwrap()
                .median_years()
        };
        let uniform4 = run(SiteAssignment::Uniform(rel4));
        let uniform8 = run(SiteAssignment::Uniform(rel8));
        let mixed = run(SiteAssignment::ByCurrentDensity {
            threshold: 5e9,
            low: rel4,
            high: rel8,
        });
        assert!(uniform8 > uniform4);
        assert!(
            mixed > uniform4 && mixed <= uniform8 * 1.05,
            "mixed {mixed} vs uniform4 {uniform4} / uniform8 {uniform8}"
        );
    }

    #[test]
    fn site_reliabilities_follow_the_threshold() {
        let rel4 = reliability(FailureCriterion::OpenCircuit);
        let rel8 = ViaArrayMc::from_reference_table(
            &ViaArrayConfig::paper_8x8(IntersectionPattern::Plus),
            Technology::default(),
            1e10,
        )
        .characterize(100, 98)
        .reliability(FailureCriterion::OpenCircuit)
        .unwrap();
        let mc = PowerGridMc::new(small_grid(), rel4).with_assignment(
            SiteAssignment::ByCurrentDensity {
                threshold: 5e9,
                low: rel4,
                high: rel8,
            },
        );
        let rels = mc.site_reliabilities();
        let grid = small_grid();
        let currents = grid.via_currents(grid.nominal_solution());
        let upgraded = rels.iter().filter(|r| r.config.count() == 64).count();
        let expected = currents.iter().filter(|&&i| i / 1e-12 >= 5e9).count();
        assert_eq!(upgraded, expected);
        assert!(upgraded > 0 && upgraded < rels.len());
    }

    #[test]
    fn session_resume_matches_uninterrupted_run() {
        let rel = reliability(FailureCriterion::OpenCircuit);
        let mc = PowerGridMc::new(small_grid(), rel);
        let whole = mc.run(24, 55).unwrap();

        let mut snapshot: Option<GridCheckpoint> = None;
        let mut on_checkpoint = |cp: &GridCheckpoint| {
            if snapshot.is_none() {
                snapshot = Some(cp.clone());
            }
        };
        mc.run_session(
            24,
            55,
            &RuntimeConfig::sequential(),
            GridSession {
                checkpoint_every: 8,
                on_checkpoint: Some(&mut on_checkpoint),
                ..GridSession::default()
            },
        )
        .unwrap();
        let cp = snapshot.expect("checkpoint fired");
        assert_eq!(cp.outcomes.len(), 8);

        // Round-trip through the text format, exactly as the daemon does,
        // then resume on a different thread count.
        let cp = GridCheckpoint::decode(&cp.encode()).unwrap();
        let resumed = mc
            .run_session(
                24,
                55,
                &RuntimeConfig::threaded(2),
                GridSession {
                    resume: Some(cp),
                    ..GridSession::default()
                },
            )
            .unwrap();
        assert_eq!(resumed.ttf_seconds(), whole.ttf_seconds());
        assert_eq!(resumed.site_failure_counts(), whole.site_failure_counts());
        assert_eq!(resumed.report().resumed_from, 8);
        assert_eq!(resumed.report().stream, whole.report().stream);
    }

    #[test]
    fn session_cancel_checkpoints_and_resumes_to_the_same_result() {
        let rel = reliability(FailureCriterion::OpenCircuit);
        let mc = PowerGridMc::new(small_grid(), rel);
        let whole = mc.run(24, 57).unwrap();

        // Trip the token from the first checkpoint callback: the run stops
        // at the next cancellation check with the prefix committed.
        let token = CancelToken::new();
        let mut last: Option<GridCheckpoint> = None;
        let mut on_checkpoint = |cp: &GridCheckpoint| {
            last = Some(cp.clone());
            token.cancel();
        };
        let cancelled = mc
            .run_session(
                24,
                57,
                &RuntimeConfig::sequential(),
                GridSession {
                    cancel: Some(&token),
                    checkpoint_every: 8,
                    on_checkpoint: Some(&mut on_checkpoint),
                    ..GridSession::default()
                },
            )
            .unwrap();
        assert!(cancelled.report().cancelled);
        assert!(cancelled.ttf_seconds().len() < 24);

        let cp = GridCheckpoint::decode(&last.expect("checkpoint fired").encode()).unwrap();
        let resumed = mc
            .run_session(
                24,
                57,
                &RuntimeConfig::sequential(),
                GridSession {
                    resume: Some(cp),
                    ..GridSession::default()
                },
            )
            .unwrap();
        assert!(!resumed.report().cancelled);
        assert_eq!(resumed.ttf_seconds(), whole.ttf_seconds());
        assert_eq!(resumed.site_failure_counts(), whole.site_failure_counts());
    }

    #[test]
    fn full_site_filter_matches_the_unfiltered_run() {
        let rel = reliability(FailureCriterion::OpenCircuit);
        let grid = small_grid();
        let every: Vec<usize> = (0..grid.via_sites().len()).collect();
        let unfiltered = PowerGridMc::new(small_grid(), rel).run(12, 61).unwrap();
        let filtered = PowerGridMc::new(grid, rel)
            .with_active_sites(&every)
            .run(12, 61)
            .unwrap();
        assert_eq!(unfiltered.ttf_seconds(), filtered.ttf_seconds());
        assert_eq!(
            unfiltered.site_failure_counts(),
            filtered.site_failure_counts()
        );
    }

    #[test]
    fn site_filter_confines_failures_to_the_subset() {
        let rel = reliability(FailureCriterion::OpenCircuit);
        let subset = [3usize, 17, 40, 41, 55];
        let r = PowerGridMc::new(small_grid(), rel)
            .with_active_sites(&subset)
            .run(20, 63)
            .unwrap();
        for (k, &count) in r.site_failure_counts().iter().enumerate() {
            assert!(
                count == 0 || subset.contains(&k),
                "screened-out site {k} failed {count} times"
            );
        }
        assert!(r.ttf_seconds().iter().all(|&t| t.is_finite() && t > 0.0));
        // With only five candidate arrays the system can't take more
        // failures than that to breach (or exhaust the subset).
        assert!(r.failures_per_trial().iter().all(|&f| f <= subset.len()));
    }

    #[test]
    fn site_filter_applies_to_weakest_link_too() {
        let rel = reliability(FailureCriterion::OpenCircuit);
        let subset = [10usize, 30];
        let r = PowerGridMc::new(small_grid(), rel)
            .with_active_sites(&subset)
            .with_system_criterion(SystemCriterion::WeakestLink)
            .run(15, 67)
            .unwrap();
        for (k, &count) in r.site_failure_counts().iter().enumerate() {
            assert!(
                count == 0 || subset.contains(&k),
                "victim {k} not in subset"
            );
        }
        let total: usize = r.site_failure_counts().iter().sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn grid_variation_is_thread_count_invariant() {
        let rel = reliability(FailureCriterion::OpenCircuit);
        let var = GridVariation {
            ttf_ln_sigma: 0.3,
            linewidth_sigma: 0.05,
        };
        let seq = PowerGridMc::new(small_grid(), rel)
            .with_variation(var)
            .run(16, 71)
            .unwrap();
        let par = PowerGridMc::new(small_grid(), rel)
            .with_variation(var)
            .run_threaded(16, 71, 4)
            .unwrap();
        assert_eq!(seq.ttf_seconds(), par.ttf_seconds());
        assert_eq!(seq.site_failure_counts(), par.site_failure_counts());
        let chunked = PowerGridMc::new(small_grid(), rel)
            .with_variation(var)
            .run_static_chunked(16, 71, 4)
            .unwrap();
        assert_eq!(seq.ttf_seconds(), chunked.ttf_seconds());
    }

    #[test]
    fn grid_variation_widens_the_ttf_spread() {
        let rel = reliability(FailureCriterion::OpenCircuit);
        let ln_var = |r: &McResult| {
            let ln: Vec<f64> = r.ttf_seconds().iter().map(|t| t.ln()).collect();
            let mean = ln.iter().sum::<f64>() / ln.len() as f64;
            ln.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (ln.len() - 1) as f64
        };
        let nominal = PowerGridMc::new(small_grid(), rel)
            .with_variation(GridVariation::default())
            .run(60, 73)
            .unwrap();
        let varied = PowerGridMc::new(small_grid(), rel)
            .with_variation(GridVariation {
                ttf_ln_sigma: 0.5,
                linewidth_sigma: 0.1,
            })
            .run(60, 73)
            .unwrap();
        assert!(
            ln_var(&varied) > ln_var(&nominal),
            "varied {} vs nominal {}",
            ln_var(&varied),
            ln_var(&nominal)
        );
    }

    #[test]
    fn inactive_variation_draws_match_across_field_settings() {
        // The lifetime draws come from their own sub-stream: turning the
        // fields off reproduces the all-zero variation run exactly, even
        // though both differ from the legacy single-stream run.
        let rel = reliability(FailureCriterion::OpenCircuit);
        let a = PowerGridMc::new(small_grid(), rel)
            .with_variation(GridVariation::default())
            .run(12, 79)
            .unwrap();
        let b = PowerGridMc::new(small_grid(), rel)
            .with_variation(GridVariation::default())
            .run(12, 79)
            .unwrap();
        assert_eq!(a.ttf_seconds(), b.ttf_seconds());
    }

    #[test]
    fn ttfs_are_positive_and_failures_counted() {
        let rel = reliability(FailureCriterion::OpenCircuit);
        let r = PowerGridMc::new(small_grid(), rel).run(20, 13).unwrap();
        assert_eq!(r.ttf_seconds().len(), 20);
        assert!(r.ttf_seconds().iter().all(|&t| t > 0.0));
        assert!(r
            .failures_per_trial()
            .iter()
            .all(|&f| f >= 1 && f <= small_grid().via_sites().len()));
        assert!(r.worst_case_years() <= r.median_years());
    }
}
