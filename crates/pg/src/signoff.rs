//! Traditional current-density signoff — the conventional flow the paper's
//! introduction describes and improves upon.
//!
//! *"Today, circuit designers typically guard against EM by comparing
//! current densities against a foundry-specified limit for a process
//! technology"* (§1). This module runs that check on a power grid: every
//! element's current density is compared against a limit derived from a
//! lifetime target through Black's law. Contrasting its verdicts with the
//! stress-aware Monte Carlo (see the `grid_signoff` example) demonstrates
//! what the conventional flow misses.

use emgrid_em::black::BlackModel;
use emgrid_em::Technology;
use emgrid_spice::netlist::Element;

use crate::model::PowerGrid;

/// Conductor cross-sections used to convert element currents to current
/// densities (m²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireGeometry {
    /// Cross-section of a lower-layer wire segment (width × thickness), m².
    pub lower_wire_cross_section: f64,
    /// Cross-section of a top-metal stripe (much wider/thicker: it carries
    /// the aggregated pad current), m².
    pub upper_wire_cross_section: f64,
    /// Conducting cross-section of a via array, m².
    pub via_cross_section: f64,
}

impl Default for WireGeometry {
    fn default() -> Self {
        WireGeometry {
            // 2 µm × 0.3 µm intermediate power-grid wire.
            lower_wire_cross_section: 2.0e-6 * 0.3e-6,
            // 10 µm × 2 µm top-metal power stripe.
            upper_wire_cross_section: 10.0e-6 * 2.0e-6,
            // The paper's 1 µm² effective via-array area.
            via_cross_section: 1e-12,
        }
    }
}

/// One element exceeding the current-density limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Element name.
    pub name: String,
    /// Its current density, A/m².
    pub current_density: f64,
    /// The limit it was checked against, A/m².
    pub limit: f64,
}

/// The outcome of a traditional signoff run.
#[derive(Debug, Clone, PartialEq)]
pub struct SignoffReport {
    /// The current-density limit applied to wires and vias, A/m².
    pub limit: f64,
    /// Elements above the limit, sorted worst first.
    pub violations: Vec<Violation>,
    /// Highest current density seen anywhere, A/m².
    pub peak_current_density: f64,
    /// Number of elements checked.
    pub checked: usize,
}

impl SignoffReport {
    /// Whether the grid passes (no violations).
    pub fn passes(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the conventional current-density signoff at the grid's nominal
/// operating point: the limit is Black's law inverted at the lifetime
/// target and operating temperature.
///
/// # Example
///
/// ```
/// use emgrid_pg::signoff::{current_density_signoff, WireGeometry};
/// use emgrid_pg::PowerGrid;
/// use emgrid_em::{black::BlackModel, Technology, SECONDS_PER_YEAR};
/// use emgrid_spice::GridSpec;
///
/// let grid = PowerGrid::from_netlist(GridSpec::custom("doc", 6, 6).generate()).unwrap();
/// let tech = Technology::default();
/// let black = BlackModel::from_accelerated_test(&tech, 3e10, 300.0);
/// let report = current_density_signoff(
///     &grid, &tech, &black, &WireGeometry::default(), SECONDS_PER_YEAR);
/// assert!(report.checked > 0);
/// ```
pub fn current_density_signoff(
    grid: &PowerGrid,
    tech: &Technology,
    black: &BlackModel,
    geometry: &WireGeometry,
    lifetime_target_seconds: f64,
) -> SignoffReport {
    let limit = black.current_density_limit(lifetime_target_seconds, tech.temperature_k());
    let solution = grid.nominal_solution();
    let mut violations = Vec::new();
    let mut peak = 0.0f64;
    let mut checked = 0usize;
    let via_indices: std::collections::HashSet<usize> =
        grid.via_sites().iter().map(|s| s.element_index).collect();
    let netlist = grid.netlist();
    for (idx, e) in netlist.resistors() {
        let Element::Resistor { name, a, b, .. } = e else {
            continue;
        };
        // Pad contact resistors have no meaningful cross-section here.
        if name.starts_with("Rp") {
            continue;
        }
        let area = if via_indices.contains(&idx) {
            geometry.via_cross_section
        } else {
            // Classify wire segments by their metal layer.
            let layer = a
                .id()
                .or(b.id())
                .and_then(|i| netlist.node_info(i))
                .map(|info| info.layer)
                .unwrap_or(1);
            if layer >= 3 {
                geometry.upper_wire_cross_section
            } else {
                geometry.lower_wire_cross_section
            }
        };
        let j = solution.resistor_current(e).abs() / area;
        peak = peak.max(j);
        checked += 1;
        if j > limit {
            violations.push(Violation {
                name: name.clone(),
                current_density: j,
                limit,
            });
        }
    }
    violations.sort_by(|a, b| {
        b.current_density
            .partial_cmp(&a.current_density)
            .expect("finite current densities")
    });
    SignoffReport {
        limit,
        violations,
        peak_current_density: peak,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emgrid_em::SECONDS_PER_YEAR;
    use emgrid_spice::benchgen::GridSpec;

    fn setup() -> (PowerGrid, Technology, BlackModel) {
        let grid = PowerGrid::from_netlist(GridSpec::pg1().generate()).unwrap();
        let tech = Technology::default();
        let black = BlackModel::from_accelerated_test(&tech, 3e10, 300.0);
        (grid, tech, black)
    }

    #[test]
    fn lenient_target_passes_strict_target_fails() {
        let (grid, tech, black) = setup();
        let geometry = WireGeometry::default();
        let lenient =
            current_density_signoff(&grid, &tech, &black, &geometry, 0.5 * SECONDS_PER_YEAR);
        assert!(lenient.passes(), "{} violations", lenient.violations.len());
        let strict =
            current_density_signoff(&grid, &tech, &black, &geometry, 2000.0 * SECONDS_PER_YEAR);
        assert!(!strict.passes());
        // Violations are ranked worst first.
        for w in strict.violations.windows(2) {
            assert!(w[0].current_density >= w[1].current_density);
        }
    }

    #[test]
    fn peak_density_matches_via_probe() {
        let (grid, tech, black) = setup();
        let report = current_density_signoff(
            &grid,
            &tech,
            &black,
            &WireGeometry::default(),
            SECONDS_PER_YEAR,
        );
        // Generator tuning puts the hottest via around 1e10-2e10 A/m².
        assert!(
            report.peak_current_density > 5e9 && report.peak_current_density < 8e10,
            "peak {:.2e}",
            report.peak_current_density
        );
        assert!(report.checked > 1000);
    }

    #[test]
    fn traditional_signoff_misses_stress_aware_failures() {
        // The paper's motivating gap, end to end: pick the lifetime target
        // right at the stress-aware worst case; the conventional check can
        // still pass because it ignores sigma_T and redundancy dynamics.
        use emgrid_fea::geometry::IntersectionPattern;
        use emgrid_via::{FailureCriterion, ViaArrayConfig, ViaArrayMc};

        let (grid, tech, black) = setup();
        let rel = ViaArrayMc::from_reference_table(
            &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
            tech,
            1e10,
        )
        .characterize(300, 5)
        .reliability(FailureCriterion::OpenCircuit)
        .unwrap();
        let mc_result = crate::mc::PowerGridMc::new(grid, rel).run(30, 7).unwrap();
        let stress_aware_years = mc_result.worst_case_years();

        let (grid2, _, _) = setup();
        let report = current_density_signoff(
            &grid2,
            &tech,
            &black,
            &WireGeometry::default(),
            stress_aware_years * SECONDS_PER_YEAR,
        );
        assert!(
            report.passes(),
            "conventional check already fails at the stress-aware lifetime — \
             the gap the paper describes would not exist"
        );
    }
}
