//! The power-grid model: netlist, DC system, via-site detection.

use std::error::Error;
use std::fmt;

use emgrid_spice::mna::{DcAnalysis, DcSolution, MnaError};
use emgrid_spice::netlist::{Element, Netlist, Node};

/// Errors from building or analyzing a power grid.
#[derive(Debug, Clone, PartialEq)]
pub enum PgError {
    /// The underlying MNA build/solve failed.
    Mna(MnaError),
    /// No via sites were found (nothing for the EM analysis to fail).
    NoViaSites,
    /// No voltage pads were found (IR drop is undefined).
    NoPads,
}

impl fmt::Display for PgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgError::Mna(e) => write!(f, "dc analysis failed: {e}"),
            PgError::NoViaSites => write!(f, "netlist contains no inter-layer via resistors"),
            PgError::NoPads => write!(f, "netlist contains no voltage pads"),
        }
    }
}

impl Error for PgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PgError::Mna(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MnaError> for PgError {
    fn from(e: MnaError) -> Self {
        PgError::Mna(e)
    }
}

/// One via-array site: a resistor joining nodes on different metal layers.
#[derive(Debug, Clone, PartialEq)]
pub struct ViaSite {
    /// Index of the resistor element in the netlist.
    pub element_index: usize,
    /// Instance name.
    pub name: String,
    /// Lower-layer terminal.
    pub lower: Node,
    /// Upper-layer terminal.
    pub upper: Node,
    /// Nominal resistance, Ω.
    pub resistance: f64,
}

/// A power grid ready for reliability analysis.
#[derive(Debug, Clone)]
pub struct PowerGrid {
    netlist: Netlist,
    dc: DcAnalysis,
    via_sites: Vec<ViaSite>,
    vdd: f64,
    nominal: DcSolution,
}

impl PowerGrid {
    /// Builds the grid model: runs via-site detection (resistors whose two
    /// terminals carry IBM-style names on different layers) and the nominal
    /// DC solve.
    ///
    /// # Errors
    ///
    /// Returns [`PgError::NoViaSites`] / [`PgError::NoPads`] for decks this
    /// analysis cannot apply to, and [`PgError::Mna`] if the nominal solve
    /// fails.
    pub fn from_netlist(netlist: Netlist) -> Result<Self, PgError> {
        let mut via_sites = Vec::new();
        for (idx, e) in netlist.resistors() {
            let Element::Resistor { name, a, b, value } = e else {
                continue;
            };
            let (Some(ia), Some(ib)) = (a.id(), b.id()) else {
                continue;
            };
            let (Some(infa), Some(infb)) = (netlist.node_info(ia), netlist.node_info(ib)) else {
                continue;
            };
            if infa.layer != infb.layer {
                let (lower, upper) = if infa.layer < infb.layer {
                    (*a, *b)
                } else {
                    (*b, *a)
                };
                via_sites.push(ViaSite {
                    element_index: idx,
                    name: name.clone(),
                    lower,
                    upper,
                    resistance: *value,
                });
            }
        }
        if via_sites.is_empty() {
            return Err(PgError::NoViaSites);
        }
        let dc = DcAnalysis::new(&netlist)?;
        let vdd = netlist
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::VoltageSource { value, .. } => Some(*value),
                _ => None,
            })
            .fold(f64::NEG_INFINITY, f64::max);
        if !vdd.is_finite() || vdd <= 0.0 {
            return Err(PgError::NoPads);
        }
        // Auto-select the nominal solve engine by size: below the
        // crossover this is the usual (bit-identical) direct factor;
        // chip-scale grids take IC(0)-CG so construction stays linear
        // instead of paying a million-unknown factor's fill.
        let nominal = dc.solve_auto()?;
        Ok(PowerGrid {
            netlist,
            dc,
            via_sites,
            vdd,
            nominal,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The assembled DC system.
    pub fn dc(&self) -> &DcAnalysis {
        &self.dc
    }

    /// Detected via-array sites.
    pub fn via_sites(&self) -> &[ViaSite] {
        &self.via_sites
    }

    /// Supply voltage (largest pad voltage), V.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// The nominal (failure-free) DC solution.
    pub fn nominal_solution(&self) -> &DcSolution {
        &self.nominal
    }

    /// Current (A, absolute value) through each via site in a solution.
    pub fn via_currents(&self, solution: &DcSolution) -> Vec<f64> {
        self.via_sites
            .iter()
            .map(|site| {
                let e = &self.netlist.elements()[site.element_index];
                solution.resistor_current(e).abs()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emgrid_spice::benchgen::GridSpec;
    use emgrid_spice::parser::parse;

    #[test]
    fn detects_all_generated_via_sites() {
        let spec = GridSpec::custom("t", 6, 7);
        let grid = PowerGrid::from_netlist(spec.generate()).unwrap();
        assert_eq!(grid.via_sites().len(), 42);
        for site in grid.via_sites() {
            assert!(site.name.starts_with("Rv"));
            assert_eq!(site.resistance, spec.via_resistance);
        }
    }

    #[test]
    fn via_orientation_is_lower_then_upper() {
        let spec = GridSpec::custom("t", 4, 4);
        let grid = PowerGrid::from_netlist(spec.generate()).unwrap();
        for site in grid.via_sites() {
            let li = grid.netlist().node_info(site.lower.id().unwrap()).unwrap();
            let ui = grid.netlist().node_info(site.upper.id().unwrap()).unwrap();
            assert!(li.layer < ui.layer);
        }
    }

    #[test]
    fn no_via_deck_is_rejected() {
        let n = parse("V1 a 0 1.0\nR1 a b 1.0\nR2 b 0 1.0\n").unwrap();
        assert!(matches!(
            PowerGrid::from_netlist(n),
            Err(PgError::NoViaSites)
        ));
    }

    #[test]
    fn pads_define_vdd() {
        let spec = GridSpec::pg1();
        let grid = PowerGrid::from_netlist(spec.generate()).unwrap();
        assert_eq!(grid.vdd(), 1.8);
    }

    #[test]
    fn via_currents_are_positive_and_load_scaled() {
        let spec = GridSpec::pg1();
        let grid = PowerGrid::from_netlist(spec.generate()).unwrap();
        let currents = grid.via_currents(grid.nominal_solution());
        assert_eq!(currents.len(), grid.via_sites().len());
        let max = currents.iter().fold(0.0f64, |m, &v| m.max(v));
        let total_load: f64 = currents.iter().sum();
        // Every ampere of load passes through exactly one layer of vias, so
        // the via currents must sum to roughly the total load current.
        assert!(max > 1e-3, "max via current {max} A");
        assert!(total_load > 1.0, "total via current {total_load} A");
    }
}
