//! IR-drop evaluation of DC solutions.

use emgrid_spice::mna::DcSolution;

use crate::model::PowerGrid;

/// Summary of the IR drop of one DC operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrDropReport {
    /// Worst (largest) drop below Vdd over all nodes, V.
    pub worst_drop: f64,
    /// The worst drop as a fraction of Vdd.
    pub worst_fraction: f64,
    /// Supply voltage the drop is referenced to, V.
    pub vdd: f64,
}

impl IrDropReport {
    /// Evaluates the IR drop of a solution on a grid.
    pub fn evaluate(grid: &PowerGrid, solution: &DcSolution) -> Self {
        let vdd = grid.vdd();
        let worst_drop = vdd - solution.min_voltage();
        IrDropReport {
            worst_drop,
            worst_fraction: worst_drop / vdd,
            vdd,
        }
    }

    /// Whether the drop violates a threshold given as a fraction of Vdd
    /// (the paper uses 10%).
    pub fn violates(&self, fraction: f64) -> bool {
        self.worst_fraction >= fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emgrid_spice::benchgen::GridSpec;

    #[test]
    fn nominal_grid_is_within_ten_percent() {
        let grid = PowerGrid::from_netlist(GridSpec::pg1().generate()).unwrap();
        let report = IrDropReport::evaluate(&grid, grid.nominal_solution());
        assert!(report.worst_drop > 0.0);
        assert!(
            !report.violates(0.10),
            "nominal drop {}",
            report.worst_fraction
        );
        assert!(report.violates(report.worst_fraction * 0.99));
    }

    #[test]
    fn fraction_is_drop_over_vdd() {
        let grid = PowerGrid::from_netlist(GridSpec::pg1().generate()).unwrap();
        let report = IrDropReport::evaluate(&grid, grid.nominal_solution());
        assert!((report.worst_fraction - report.worst_drop / report.vdd).abs() < 1e-15);
    }
}
