//! Power-grid electromigration reliability analysis (the paper's §4–§5,
//! level 2).
//!
//! The grid is a redundant system whose components are **via arrays**: each
//! array's TTF comes from the level-1 characterization
//! ([`emgrid_via::ViaArrayReliability`]), rescaled to its local current.
//! A Monte Carlo plays array failures forward — every failure is a rank-1
//! conductance update handled incrementally by Sherman–Morrison–Woodbury —
//! until the system failure criterion (weakest link, or IR drop above a
//! fraction of Vdd) is breached.
//!
//! * [`model::PowerGrid`] — netlist → grid model with via-site detection,
//! * [`irdrop`] — IR-drop evaluation of DC solutions,
//! * [`mc::PowerGridMc`] — Algorithm 1 with via arrays as components,
//! * [`report`] — the Table 2 / Fig. 10 output helpers.
//!
//! # Example
//!
//! ```
//! use emgrid_pg::prelude::*;
//!
//! // Small synthetic grid + the paper's 4x4 array characterization.
//! let netlist = GridSpec::custom("demo", 8, 8).generate();
//! let grid = PowerGrid::from_netlist(netlist).unwrap();
//! let reliability = ViaArrayMc::from_reference_table(
//!     &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
//!     Technology::default(),
//!     1e10,
//! )
//! .characterize(200, 1)
//! .reliability(FailureCriterion::OpenCircuit)
//! .unwrap();
//!
//! let mc = PowerGridMc::new(grid, reliability)
//!     .with_system_criterion(SystemCriterion::IrDropFraction(0.10));
//! let result = mc.run(25, 7).unwrap();
//! assert!(result.ecdf().min() > 0.0);
//! ```

pub mod checkpoint;
pub mod flat;
pub mod irdrop;
pub mod mc;
pub mod model;
pub mod report;
pub mod signoff;

pub use checkpoint::{CheckpointError, GridCheckpoint};
pub use flat::{FlatMc, FlatResult};
pub use irdrop::IrDropReport;
pub use mc::{
    GridSession, GridVariation, McResult, PowerGridMc, SiteAssignment, SolverStrategy,
    SystemCriterion,
};
pub use model::{PgError, PowerGrid, ViaSite};
pub use report::{Table2Row, TtfCurve};
pub use signoff::{current_density_signoff, SignoffReport, WireGeometry};

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::flat::{FlatMc, FlatResult};
    pub use crate::mc::{
        GridVariation, McResult, PowerGridMc, SiteAssignment, SolverStrategy, SystemCriterion,
    };
    pub use crate::model::{PgError, PowerGrid, ViaSite};
    pub use crate::report::{Table2Row, TtfCurve};
    pub use emgrid_em::{Technology, SECONDS_PER_YEAR};
    pub use emgrid_fea::geometry::IntersectionPattern;
    pub use emgrid_spice::GridSpec;
    pub use emgrid_via::{FailureCriterion, ViaArrayConfig, ViaArrayMc, ViaArrayReliability};
}
