//! Serialized state of an interrupted grid Monte Carlo session.
//!
//! The format is line-oriented text with every `f64` stored as its
//! 16-hex-digit IEEE-754 bit pattern — the same discipline as the stress
//! cache — so a resumed session restores the committed trial outcomes and
//! Welford accumulator *bit-exactly* and replays into the same final
//! statistics as an uninterrupted run:
//!
//! ```text
//! emgrid-grid-checkpoint-v1
//! stream <count> <mean> <m2> <min> <max>
//! trial <ttf> <failed site> <failed site> ...
//! trial ...
//! ```

use std::fmt;
use std::fmt::Write as _;

use emgrid_stats::OnlineStats;

const FORMAT: &str = "emgrid-grid-checkpoint-v1";

/// A malformed or truncated checkpoint (corrupt checkpoints are treated as
/// absent by the daemon: the job restarts from trial zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError(pub String);

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad grid checkpoint: {}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

/// Committed state of a grid Monte Carlo run: a prefix of trial outcomes
/// plus the `ln TTF` stream over exactly those trials.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCheckpoint {
    /// Outcomes `(system TTF seconds, ordered failed site indices)` of
    /// trials `0..outcomes.len()`, in trial order.
    pub outcomes: Vec<(f64, Vec<usize>)>,
    /// The observable stream over those outcomes.
    pub stream: OnlineStats,
}

impl GridCheckpoint {
    /// Serializes to the versioned text format.
    pub fn encode(&self) -> String {
        let (count, mean, m2, min, max) = self.stream.raw_parts();
        let mut out = String::new();
        let _ = writeln!(out, "{FORMAT}");
        let _ = writeln!(
            out,
            "stream {count} {} {} {} {}",
            hex(mean),
            hex(m2),
            hex(min),
            hex(max)
        );
        for (ttf, sites) in &self.outcomes {
            let _ = write!(out, "trial {}", hex(*ttf));
            for k in sites {
                let _ = write!(out, " {k}");
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text format back, validating the header and that the
    /// stream count matches the number of trial lines.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on any malformed line or count mismatch.
    pub fn decode(text: &str) -> Result<Self, CheckpointError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(FORMAT) => {}
            other => return Err(CheckpointError(format!("bad header {other:?}"))),
        }
        let stream_line = lines
            .next()
            .ok_or_else(|| CheckpointError("missing stream line".into()))?;
        let mut fields = stream_line.split_whitespace();
        if fields.next() != Some("stream") {
            return Err(CheckpointError("missing stream line".into()));
        }
        let count: u64 = fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError("bad stream count".into()))?;
        let mut next_f64 = || -> Result<f64, CheckpointError> {
            parse_hex(
                fields
                    .next()
                    .ok_or_else(|| CheckpointError("short stream line".into()))?,
            )
        };
        let mean = next_f64()?;
        let m2 = next_f64()?;
        let min = next_f64()?;
        let max = next_f64()?;
        let stream = OnlineStats::from_raw_parts(count, mean, m2, min, max);

        let mut outcomes = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            if fields.next() != Some("trial") {
                return Err(CheckpointError(format!("bad line {line:?}")));
            }
            let ttf = parse_hex(
                fields
                    .next()
                    .ok_or_else(|| CheckpointError("trial line without TTF".into()))?,
            )?;
            let sites = fields
                .map(|s| {
                    s.parse::<usize>()
                        .map_err(|_| CheckpointError(format!("bad site index {s:?}")))
                })
                .collect::<Result<Vec<usize>, _>>()?;
            outcomes.push((ttf, sites));
        }
        if outcomes.len() as u64 != count {
            return Err(CheckpointError(format!(
                "stream count {count} != {} trial lines",
                outcomes.len()
            )));
        }
        Ok(GridCheckpoint { outcomes, stream })
    }
}

fn hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_hex(s: &str) -> Result<f64, CheckpointError> {
    if s.len() != 16 {
        return Err(CheckpointError(format!("bad f64 field {s:?}")));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError(format!("bad f64 field {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> GridCheckpoint {
        let outcomes = vec![
            (1.25e7, vec![3, 1, 4]),
            (f64::MIN_POSITIVE, vec![]),
            (9.993e8, vec![0]),
        ];
        let mut stream = OnlineStats::new();
        for (ttf, _) in &outcomes {
            stream.push(ttf.ln());
        }
        GridCheckpoint { outcomes, stream }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let cp = sample_checkpoint();
        let back = GridCheckpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.stream.mean().to_bits(), cp.stream.mean().to_bits());
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let cp = GridCheckpoint {
            outcomes: Vec::new(),
            stream: OnlineStats::new(),
        };
        let back = GridCheckpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let cp = sample_checkpoint();
        let good = cp.encode();
        assert!(GridCheckpoint::decode("").is_err());
        assert!(GridCheckpoint::decode("emgrid-grid-checkpoint-v0\n").is_err());
        // Truncating a trial line breaks the count check.
        let truncated: String = good.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(GridCheckpoint::decode(&truncated).is_err());
        let mangled = good.replace("trial", "trail");
        assert!(GridCheckpoint::decode(&mangled).is_err());
    }
}
