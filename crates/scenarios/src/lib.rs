//! `emgrid-scenarios`: declarative sweep specifications.
//!
//! A *sweep spec* is a small JSON document — a job template plus named
//! axes of values — that expands into the full cross product of concrete
//! [`JobSpec`](emgrid_serve::JobSpec)s. It is how the paper's figures
//! become one artifact each: Fig. 8's TTF-vs-current-density curves are a
//! `current_density` axis over a `characterize` template; Figs. 9–10's
//! Plus/T/L comparisons add `pattern` and `array` axes.
//!
//! Two properties anchor the design, mirroring the job engine they feed:
//!
//! * **Expansion is a pure function.** The same spec bytes always expand
//!   to the same job list in the same order — axes are canonicalized
//!   (sorted by name) before anything else happens, so axis *declaration*
//!   order cannot matter, while the *value* order inside each axis is
//!   preserved because it is semantic (it orders the points of a curve).
//! * **Identity is content-derived.** A sweep's id is a hash of its
//!   canonical form, so resubmitting the same spec addresses the same
//!   sweep (and its manifest and report) rather than starting a twin.
//!
//! The expansion-side validation is strict and *attributed*: a bad value
//! inside an axis surfaces as a [`SpecError`](emgrid_serve::SpecError)
//! whose field is `axes.<name>[<index>]`, so a client sees exactly which
//! point of which axis was rejected.

mod expand;
mod spec;

pub use expand::SweepJob;
pub use spec::{SweepSpec, MAX_SWEEP_JOBS};
