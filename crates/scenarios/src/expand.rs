//! Cross-product expansion of a sweep spec into concrete job specs.

use emgrid_serve::json::Json;
use emgrid_serve::{JobSpec, SpecError};

use crate::spec::{render_value, SweepSpec};

/// One expanded point of a sweep: a fully validated [`JobSpec`] plus the
/// axis coordinates that produced it.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Position in expansion order (the last-named axis varies fastest).
    pub index: usize,
    /// The stable derived key, `axis=value` pairs joined with `,` in
    /// canonical (sorted-axis) order — e.g.
    /// `array=4x4,current_density=20000000000,pattern=plus`. This, not
    /// any runtime job id, is how manifest entries and report rows are
    /// addressed, so reports stay byte-identical across restarts.
    pub key: String,
    /// The axis coordinates, in canonical axis order.
    pub axis_values: Vec<(String, Json)>,
    /// The validated job spec for this point.
    pub spec: JobSpec,
}

impl SweepSpec {
    /// Expands the cross product into validated jobs, in a deterministic
    /// order: axes iterate in canonical (sorted-name) order with the last
    /// axis varying fastest, values in declared order.
    ///
    /// Every composed document passes through both
    /// [`JobSpec::from_json`] *and* [`JobSpec::resolve`], so a sweep that
    /// expands cleanly cannot later die on spec validation inside a
    /// worker.
    ///
    /// # Errors
    ///
    /// A failure caused by an axis value is re-attributed to
    /// `axes.<name>[<index>]`; template-caused failures keep the job
    /// spec's own field name.
    pub fn expand(&self) -> Result<Vec<SweepJob>, SpecError> {
        let total = self.job_count();
        let mut jobs = Vec::with_capacity(total);
        let mut odometer = vec![0usize; self.axes.len()];
        for index in 0..total {
            let mut pairs = self.template.clone();
            let mut axis_values = Vec::with_capacity(self.axes.len());
            for (pos, (axis, values)) in self.axes.iter().enumerate() {
                let value = values[odometer[pos]].clone();
                merge_axis(&mut pairs, axis, value.clone());
                axis_values.push((axis.clone(), value));
            }
            let doc = Json::Obj(pairs);
            let spec = JobSpec::from_json(&doc).map_err(|e| self.attribute(e, &odometer))?;
            spec.resolve().map_err(|e| self.attribute(e, &odometer))?;
            jobs.push(SweepJob {
                index,
                key: self.key_at(&odometer),
                axis_values,
                spec,
            });
            for pos in (0..odometer.len()).rev() {
                odometer[pos] += 1;
                if odometer[pos] < self.axes[pos].1.len() {
                    break;
                }
                odometer[pos] = 0;
            }
        }
        Ok(jobs)
    }

    /// The derived key for the job at one odometer position.
    fn key_at(&self, odometer: &[usize]) -> String {
        let mut key = String::new();
        for (pos, (axis, values)) in self.axes.iter().enumerate() {
            if pos > 0 {
                key.push(',');
            }
            key.push_str(axis);
            key.push('=');
            // Scalar-ness was checked at parse time.
            key.push_str(&render_value(&values[odometer[pos]]).expect("scalar axis value"));
        }
        key
    }

    /// Pins a job-spec error on the axis value that caused it, when one
    /// of the composed document's failing fields is an axis.
    fn attribute(&self, e: SpecError, odometer: &[usize]) -> SpecError {
        if let Some(field) = &e.field {
            if let Some(pos) = self.axes.iter().position(|(axis, _)| axis == field) {
                return SpecError::field(format!("axes.{field}[{}]", odometer[pos]), e.message);
            }
        }
        e
    }
}

/// Sets one axis coordinate in the composed document. A dotted axis name
/// (`variation.edge_current_factor`) addresses a key inside a nested
/// template object, creating the object when the template omitted it.
fn merge_axis(pairs: &mut Vec<(String, Json)>, axis: &str, value: Json) {
    let Some((head, rest)) = axis.split_once('.') else {
        pairs.push((axis.to_owned(), value));
        return;
    };
    if let Some((_, Json::Obj(inner))) = pairs.iter_mut().find(|(k, _)| k == head) {
        merge_axis(inner, rest, value);
        return;
    }
    let mut inner = Vec::new();
    merge_axis(&mut inner, rest, value);
    pairs.push((head.to_owned(), Json::Obj(inner)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expand(text: &str) -> Vec<SweepJob> {
        SweepSpec::parse(text).unwrap().expand().unwrap()
    }

    #[test]
    fn expansion_order_is_odometer_over_sorted_axes() {
        let jobs = expand(
            r#"{
            "name": "order",
            "job": {"kind": "characterize", "trials": 8},
            "axes": {
                "pattern": ["plus", "tee"],
                "array": ["1x1", "4x4"]
            }
        }"#,
        );
        let keys: Vec<&str> = jobs.iter().map(|j| j.key.as_str()).collect();
        assert_eq!(
            keys,
            [
                "array=1x1,pattern=plus",
                "array=1x1,pattern=tee",
                "array=4x4,pattern=plus",
                "array=4x4,pattern=tee",
            ]
        );
        assert_eq!(
            jobs.iter().map(|j| j.index).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
    }

    #[test]
    fn numeric_axis_values_render_like_canonical_json() {
        let jobs = expand(
            r#"{
            "name": "j",
            "job": {"kind": "characterize", "trials": 8},
            "axes": {"current_density": [5e9, 2e10]}
        }"#,
        );
        assert_eq!(jobs[0].key, "current_density=5000000000");
        assert_eq!(jobs[1].key, "current_density=20000000000");
        assert!(matches!(
            &jobs[1].spec.body,
            emgrid_serve::JobBody::Characterize(mc) if mc.current_density == Some(2e10)
        ));
    }

    #[test]
    fn dotted_axes_merge_into_the_nested_variation_block() {
        let jobs = expand(
            r#"{
            "name": "variation-sweep",
            "job": {"kind": "characterize", "trials": 8,
                    "variation": {"temperature_sigma_c": 5}},
            "axes": {"variation.edge_current_factor": [0.0, 0.5]}
        }"#,
        );
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1].key, "variation.edge_current_factor=0.5");
        let emgrid_serve::JobBody::Characterize(mc) = &jobs[1].spec.body else {
            panic!("wrong kind")
        };
        let v = mc.variation.expect("variation block lost in merge");
        assert_eq!(v.edge_current_factor, 0.5);
        assert_eq!(v.temperature_sigma_c, 5.0);

        // A bad dotted value is re-attributed to its axis and index.
        let spec = SweepSpec::parse(
            r#"{
            "name": "bad",
            "job": {"kind": "characterize", "trials": 8},
            "axes": {"variation.edge_current_factor": [0.5, -1]}
        }"#,
        )
        .unwrap();
        let e = spec.expand().unwrap_err();
        assert_eq!(
            e.field.as_deref(),
            Some("axes.variation.edge_current_factor[1]")
        );
    }

    #[test]
    fn bad_axis_value_is_attributed_to_axis_and_index() {
        let spec = SweepSpec::parse(
            r#"{
            "name": "bad",
            "job": {"kind": "characterize", "trials": 8},
            "axes": {"array": ["1x1", "9x9"]}
        }"#,
        )
        .unwrap();
        let e = spec.expand().unwrap_err();
        assert_eq!(e.field.as_deref(), Some("axes.array[1]"));
        assert!(e.message.contains("9x9"), "{}", e.message);
    }

    #[test]
    fn template_errors_keep_the_job_spec_field() {
        let spec = SweepSpec::parse(
            r#"{
            "name": "bad",
            "job": {"kind": "characterize", "trials": 0},
            "axes": {"array": ["1x1"]}
        }"#,
        )
        .unwrap();
        let e = spec.expand().unwrap_err();
        assert_eq!(e.field.as_deref(), Some("trials"));
    }

    #[test]
    fn resolve_level_errors_are_attributed_too() {
        // `criterion` parses as a string but only resolves against the
        // known labels, exercising the JobSpec::resolve error path.
        let spec = SweepSpec::parse(
            r#"{
            "name": "bad",
            "job": {"kind": "characterize", "trials": 8},
            "axes": {"criterion": ["wl", "nope"]}
        }"#,
        )
        .unwrap();
        let e = spec.expand().unwrap_err();
        assert_eq!(e.field.as_deref(), Some("axes.criterion[1]"));
    }
}
