//! Sweep-spec parsing, canonicalization, and content-derived identity.

use emgrid_serve::json::{self, Json};
use emgrid_serve::SpecError;

/// Ceiling on the expanded job count: a sweep spec arrives over the
/// network and a handful of ten-value axes would otherwise multiply into
/// millions of queued jobs.
pub const MAX_SWEEP_JOBS: usize = 4096;

/// Longest accepted sweep name / axis name / string axis value.
const MAX_LABEL: usize = 64;

/// A parsed, canonicalized sweep specification.
///
/// Canonical form: the `job` template is kept verbatim (its key order is
/// the client's, and [`JobSpec::to_json`](emgrid_serve::JobSpec::to_json)
/// normalizes it downstream anyway), while `axes` are sorted by axis
/// name. Value order *within* an axis is preserved — it orders the points
/// of a curve, so sorting it would change what the sweep means.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// `Some(version)` when the document pinned its schema with a
    /// top-level `"schema"` key; `None` means implicitly version 1 and
    /// keeps pre-versioning canonical bytes (and so FNV-derived sweep
    /// ids) unchanged.
    pub(crate) schema: Option<u64>,
    pub(crate) name: String,
    pub(crate) template: Vec<(String, Json)>,
    /// Sorted by axis name; each axis holds at least one scalar value.
    pub(crate) axes: Vec<(String, Vec<Json>)>,
}

impl SweepSpec {
    /// Parses a sweep spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] naming the offending field.
    pub fn parse(text: &str) -> Result<SweepSpec, SpecError> {
        let doc = json::parse(text).map_err(|e| SpecError::document(e.to_string()))?;
        SweepSpec::from_json(&doc)
    }

    /// Parses a sweep spec from a parsed document.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] naming the offending field.
    pub fn from_json(doc: &Json) -> Result<SweepSpec, SpecError> {
        let Json::Obj(pairs) = doc else {
            return Err(SpecError::document("sweep spec must be a JSON object"));
        };
        for (key, _) in pairs {
            if !matches!(key.as_str(), "schema" | "name" | "job" | "axes") {
                return Err(SpecError::field(
                    key.clone(),
                    format!("unknown sweep key `{key}` (expected schema, name, job, axes)"),
                ));
            }
        }

        // Same contract as job specs: absent means implicit version 1.
        let schema = match doc.get("schema") {
            None => None,
            Some(v) => {
                let n = v.as_u64().ok_or_else(|| {
                    SpecError::field("schema", "`schema` must be a non-negative integer")
                })?;
                if n != emgrid_serve::SCHEMA_VERSION {
                    return Err(SpecError::field(
                        "schema",
                        format!(
                            "unsupported spec schema {n} (supported: {})",
                            emgrid_serve::SCHEMA_VERSION
                        ),
                    ));
                }
                Some(n)
            }
        };

        let name = doc
            .get("name")
            .ok_or_else(|| SpecError::field("name", "missing `name`"))?
            .as_str()
            .ok_or_else(|| SpecError::field("name", "`name` must be a string"))?;
        check_label("name", name)?;

        let Some(Json::Obj(template)) = doc.get("job") else {
            return Err(SpecError::field(
                "job",
                "`job` must be an object (the job template)",
            ));
        };

        let Some(Json::Obj(axis_pairs)) = doc.get("axes") else {
            return Err(SpecError::field(
                "axes",
                "`axes` must be an object of value arrays",
            ));
        };
        if axis_pairs.is_empty() {
            return Err(SpecError::field("axes", "at least one axis is required"));
        }

        let mut axes: Vec<(String, Vec<Json>)> = Vec::with_capacity(axis_pairs.len());
        for (axis, values) in axis_pairs {
            let field = format!("axes.{axis}");
            check_label(&field, axis)?;
            if axes.iter().any(|(a, _)| a == axis) {
                return Err(SpecError::field(field, "duplicate axis"));
            }
            if template_sets(template, axis) {
                return Err(SpecError::field(
                    field,
                    "axis shadows a key already set in the job template",
                ));
            }
            let Json::Arr(values) = values else {
                return Err(SpecError::field(field, "axis must be an array of values"));
            };
            if values.is_empty() {
                return Err(SpecError::field(field, "axis must hold at least one value"));
            }
            let mut rendered = Vec::with_capacity(values.len());
            for (index, value) in values.iter().enumerate() {
                let field = format!("axes.{axis}[{index}]");
                let text = render_value(value).ok_or_else(|| {
                    SpecError::field(field.clone(), "axis values must be scalars")
                })?;
                if let Json::Str(s) = value {
                    check_label(&field, s)?;
                }
                if rendered.contains(&text) {
                    return Err(SpecError::field(
                        field,
                        format!("duplicate axis value `{text}`"),
                    ));
                }
                rendered.push(text);
            }
            axes.push((axis.clone(), values.clone()));
        }
        // Canonical order: axis declaration order must not matter.
        axes.sort_by(|a, b| a.0.cmp(&b.0));

        let spec = SweepSpec {
            schema,
            name: name.to_owned(),
            template: template.clone(),
            axes,
        };
        if spec.job_count() == 0 {
            return Err(SpecError::field(
                "axes",
                format!("sweep expands to more than {MAX_SWEEP_JOBS} jobs"),
            ));
        }
        Ok(spec)
    }

    /// The sweep's name (a label, not its identity).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The canonicalized axes: sorted by name, value order preserved.
    pub fn axes(&self) -> &[(String, Vec<Json>)] {
        &self.axes
    }

    /// The number of jobs the cross product expands to (0 only as the
    /// overflow sentinel checked at parse time).
    pub fn job_count(&self) -> usize {
        let mut total = 1usize;
        for (_, values) in &self.axes {
            total = match total.checked_mul(values.len()) {
                Some(t) if t <= MAX_SWEEP_JOBS => t,
                _ => return 0,
            };
        }
        total
    }

    /// The canonical document: fixed key order, axes sorted by name. An
    /// explicit schema version renders first; an implicit one stays
    /// implicit, so pre-versioning sweep ids don't shift.
    pub fn canonical_json(&self) -> Json {
        let mut pairs = Vec::new();
        if self.schema.is_some() {
            pairs.push((
                "schema".to_owned(),
                Json::n(emgrid_serve::SCHEMA_VERSION as f64),
            ));
        }
        pairs.extend([
            ("name".to_owned(), Json::s(&self.name)),
            ("job".to_owned(), Json::Obj(self.template.clone())),
            (
                "axes".to_owned(),
                Json::Obj(
                    self.axes
                        .iter()
                        .map(|(axis, values)| (axis.clone(), Json::Arr(values.clone())))
                        .collect(),
                ),
            ),
        ]);
        Json::Obj(pairs)
    }

    /// The canonical text form — what the sweep id hashes and what the
    /// manifest stores as `spec.json`.
    pub fn canonical_string(&self) -> String {
        self.canonical_json().to_string()
    }

    /// The content-derived sweep id: 16 hex digits of FNV-1a over the
    /// canonical bytes. Two specs share an id exactly when they share a
    /// canonical form, so resubmission is naturally idempotent.
    pub fn id(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in self.canonical_string().as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        format!("{hash:016x}")
    }
}

/// The deterministic text form of one axis value, used in job keys and
/// duplicate detection. `None` for non-scalars.
pub(crate) fn render_value(value: &Json) -> Option<String> {
    match value {
        Json::Str(s) => Some(s.clone()),
        Json::Num(_) | Json::Bool(_) => Some(value.to_string()),
        Json::Null | Json::Arr(_) | Json::Obj(_) => None,
    }
}

/// Whether the template already sets the (possibly dotted) axis path: a
/// dotted axis like `variation.edge_current_factor` shadows only when the
/// template's nested `variation` object sets `edge_current_factor`.
fn template_sets(template: &[(String, Json)], axis: &str) -> bool {
    match axis.split_once('.') {
        None => template.iter().any(|(k, _)| k == axis),
        Some((head, rest)) => template
            .iter()
            .any(|(k, v)| k == head && matches!(v, Json::Obj(inner) if template_sets(inner, rest))),
    }
}

/// Labels (names, axis names, string axis values) appear in derived job
/// keys and on the filesystem, so the accepted alphabet is strict.
fn check_label(field: &str, value: &str) -> Result<(), SpecError> {
    if value.is_empty() || value.len() > MAX_LABEL {
        return Err(SpecError::field(
            field,
            format!("must be 1..={MAX_LABEL} characters"),
        ));
    }
    if !value
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return Err(SpecError::field(
            field,
            "allowed characters: ASCII letters, digits, `-`, `_`, `.`",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(text: &str) -> SweepSpec {
        SweepSpec::parse(text).unwrap()
    }

    fn err(text: &str) -> SpecError {
        SweepSpec::parse(text).unwrap_err()
    }

    const FIG8_FRAGMENT: &str = r#"{
        "name": "fig8",
        "job": {"kind": "characterize", "trials": 100},
        "axes": {
            "current_density": [5e9, 1e10, 2e10],
            "array": ["1x1", "4x4"]
        }
    }"#;

    #[test]
    fn axes_are_canonicalized_by_name_with_value_order_preserved() {
        let s = spec(FIG8_FRAGMENT);
        let names: Vec<&str> = s.axes().iter().map(|(a, _)| a.as_str()).collect();
        assert_eq!(names, ["array", "current_density"]);
        let j: Vec<String> = s.axes()[1].1.iter().map(|v| v.to_string()).collect();
        assert_eq!(j, ["5000000000", "10000000000", "20000000000"]);
        assert_eq!(s.job_count(), 6);
    }

    #[test]
    fn axis_declaration_order_does_not_change_identity() {
        let forward = spec(FIG8_FRAGMENT);
        let reversed = spec(
            r#"{
            "name": "fig8",
            "job": {"kind": "characterize", "trials": 100},
            "axes": {
                "array": ["1x1", "4x4"],
                "current_density": [5e9, 1e10, 2e10]
            }
        }"#,
        );
        assert_eq!(forward.canonical_string(), reversed.canonical_string());
        assert_eq!(forward.id(), reversed.id());
    }

    #[test]
    fn id_is_sixteen_hex_digits_and_content_sensitive() {
        let a = spec(FIG8_FRAGMENT);
        assert_eq!(a.id().len(), 16);
        assert!(a.id().chars().all(|c| c.is_ascii_hexdigit()));
        let b = spec(&FIG8_FRAGMENT.replace("\"fig8\"", "\"fig9\""));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn canonical_string_round_trips() {
        let s = spec(FIG8_FRAGMENT);
        let again = SweepSpec::parse(&s.canonical_string()).unwrap();
        assert_eq!(s, again);
        assert_eq!(s.id(), again.id());
    }

    #[test]
    fn structural_errors_name_their_field() {
        assert_eq!(err("[]").field, None);
        assert_eq!(
            err(r#"{"job": {}, "axes": {"a": [1]}}"#).field.as_deref(),
            Some("name")
        );
        assert_eq!(
            err(r#"{"name": "s", "axes": {"a": [1]}}"#).field.as_deref(),
            Some("job")
        );
        assert_eq!(
            err(r#"{"name": "s", "job": {}}"#).field.as_deref(),
            Some("axes")
        );
        assert_eq!(
            err(r#"{"name": "s", "job": {}, "axes": {}}"#)
                .field
                .as_deref(),
            Some("axes")
        );
        assert_eq!(
            err(r#"{"name": "s", "job": {}, "axes": {"a": [1]}, "extra": 1}"#)
                .field
                .as_deref(),
            Some("extra")
        );
        assert_eq!(
            err(r#"{"name": "bad name!", "job": {}, "axes": {"a": [1]}}"#)
                .field
                .as_deref(),
            Some("name")
        );
    }

    #[test]
    fn axis_errors_name_axis_and_index() {
        assert_eq!(
            err(r#"{"name": "s", "job": {}, "axes": {"a": []}}"#)
                .field
                .as_deref(),
            Some("axes.a")
        );
        assert_eq!(
            err(r#"{"name": "s", "job": {}, "axes": {"a": 3}}"#)
                .field
                .as_deref(),
            Some("axes.a")
        );
        assert_eq!(
            err(r#"{"name": "s", "job": {}, "axes": {"a": [[1]]}}"#)
                .field
                .as_deref(),
            Some("axes.a[0]")
        );
        assert_eq!(
            err(r#"{"name": "s", "job": {}, "axes": {"a": [1, 1]}}"#)
                .field
                .as_deref(),
            Some("axes.a[1]")
        );
        assert_eq!(
            err(r#"{"name": "s", "job": {}, "axes": {"a": ["x,y"]}}"#)
                .field
                .as_deref(),
            Some("axes.a[0]")
        );
        assert_eq!(
            err(r#"{"name": "s", "job": {"trials": 5}, "axes": {"trials": [1]}}"#)
                .field
                .as_deref(),
            Some("axes.trials")
        );
    }

    #[test]
    fn schema_version_is_accepted_and_keeps_unversioned_ids_stable() {
        let implicit = spec(FIG8_FRAGMENT);
        assert!(!implicit.canonical_string().contains("schema"));

        let pinned = spec(&FIG8_FRAGMENT.replacen('{', r#"{"schema": 1,"#, 1));
        assert!(pinned.canonical_string().starts_with(r#"{"schema":1,"#));
        // Pinning the version is a different document (different id), but
        // the same sweep otherwise.
        assert_ne!(pinned.id(), implicit.id());
        assert_eq!(pinned.axes(), implicit.axes());
        let again = SweepSpec::parse(&pinned.canonical_string()).unwrap();
        assert_eq!(pinned, again);

        let e = err(&FIG8_FRAGMENT.replacen('{', r#"{"schema": 3,"#, 1));
        assert_eq!(e.field.as_deref(), Some("schema"));
        assert!(e.message.contains("supported: 1"), "{}", e.message);
    }

    #[test]
    fn dotted_axes_shadow_only_matching_nested_template_keys() {
        // Template sets variation.linewidth_sigma; sweeping a *different*
        // nested key is fine, the same key is a shadow.
        let base = r#"{
            "name": "var",
            "job": {"kind": "characterize", "trials": 8,
                    "variation": {"linewidth_sigma": 0.1}},
            "axes": {"AXIS": [0.0, 0.5]}
        }"#;
        assert!(SweepSpec::parse(&base.replace("AXIS", "variation.edge_current_factor")).is_ok());
        let e = err(&base.replace("AXIS", "variation.linewidth_sigma"));
        assert_eq!(e.field.as_deref(), Some("axes.variation.linewidth_sigma"));
    }

    #[test]
    fn expansion_overflow_is_rejected_at_parse_time() {
        // 17 values on each of 3 axes: 4913 > MAX_SWEEP_JOBS.
        let values: Vec<String> = (0..17).map(|i| i.to_string()).collect();
        let arr = format!("[{}]", values.join(","));
        let text = format!(
            r#"{{"name": "big", "job": {{}}, "axes": {{"a": {arr}, "b": {arr}, "c": {arr}}}}}"#
        );
        let e = err(&text);
        assert_eq!(e.field.as_deref(), Some("axes"));
        assert!(e.message.contains("4096"), "{}", e.message);
    }
}
