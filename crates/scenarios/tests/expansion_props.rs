//! Property tests: sweep expansion is a pure function of the spec bytes,
//! and axis declaration order never changes a sweep's identity or its
//! expanded job list.

use emgrid_scenarios::SweepSpec;
use emgrid_serve::JobBody;
use proptest::prelude::*;
use proptest::TestRng;

/// A randomly composed sweep over the characterize spec's label axes,
/// returned as JSON text with axes in a seed-dependent declaration order.
/// The second text is the same sweep with the axis order rotated.
fn random_spec_texts(seed: u64) -> (String, String) {
    let mut rng = TestRng::from_name(&format!("sweep-spec-{seed}"));
    let mut pick = |pool: &[&str]| -> Vec<String> {
        let count = 1 + rng.next_below(pool.len() as u64) as usize;
        pool[..count].iter().map(|s| format!("\"{s}\"")).collect()
    };
    let mut axes: Vec<(String, Vec<String>)> = vec![
        ("array".into(), pick(&["1x1", "4x4", "8x8"])),
        ("pattern".into(), pick(&["plus", "tee", "ell"])),
        ("criterion".into(), pick(&["wl", "r2x", "rinf"])),
        (
            "seed".into(),
            (0..1 + rng.next_below(3) as u64)
                .map(|i| (i * 100 + 1 + rng.next_below(100)).to_string())
                .collect(),
        ),
    ];
    // Seed-dependent declaration order for the first rendering...
    let swaps = rng.next_below(8);
    for i in 0..swaps as usize {
        let a = i % axes.len();
        let b = rng.next_below(axes.len() as u64) as usize;
        axes.swap(a, b);
    }
    let render = |axes: &[(String, Vec<String>)]| {
        let body: Vec<String> = axes
            .iter()
            .map(|(name, values)| format!("\"{name}\": [{}]", values.join(", ")))
            .collect();
        format!(
            r#"{{"name": "prop", "job": {{"kind": "characterize", "trials": 16}}, "axes": {{{}}}}}"#,
            body.join(", ")
        )
    };
    let forward = render(&axes);
    // ...and a rotated order for the second: same sweep, different bytes.
    axes.rotate_left(1);
    (forward, render(&axes))
}

/// A comparable fingerprint of an expanded job list; canonical spec JSON
/// stands in for `JobSpec: Eq`.
fn fingerprint(jobs: &[emgrid_scenarios::SweepJob]) -> Vec<(usize, String, String)> {
    jobs.iter()
        .map(|j| (j.index, j.key.clone(), j.spec.to_json().to_string()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn expansion_is_a_pure_function_of_the_spec_bytes(seed in 0u64..1_000_000) {
        let (text, _) = random_spec_texts(seed);
        let a = SweepSpec::parse(&text).unwrap();
        let b = SweepSpec::parse(&text).unwrap();
        prop_assert_eq!(a.id(), b.id());
        prop_assert_eq!(a.canonical_string(), b.canonical_string());
        prop_assert_eq!(
            fingerprint(&a.expand().unwrap()),
            fingerprint(&b.expand().unwrap())
        );
    }

    #[test]
    fn axis_declaration_order_is_canonicalized_away(seed in 0u64..1_000_000) {
        let (forward, rotated) = random_spec_texts(seed);
        let a = SweepSpec::parse(&forward).unwrap();
        let b = SweepSpec::parse(&rotated).unwrap();
        prop_assert_eq!(a.id(), b.id());
        prop_assert_eq!(a.canonical_string(), b.canonical_string());
        prop_assert_eq!(
            fingerprint(&a.expand().unwrap()),
            fingerprint(&b.expand().unwrap())
        );
    }

    #[test]
    fn every_expanded_job_resolves_and_keys_are_unique(seed in 0u64..1_000_000) {
        let (text, _) = random_spec_texts(seed);
        let spec = SweepSpec::parse(&text).unwrap();
        let jobs = spec.expand().unwrap();
        prop_assert_eq!(jobs.len(), spec.job_count());
        let mut keys: Vec<&str> = jobs.iter().map(|j| j.key.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), jobs.len());
        for job in &jobs {
            prop_assert!(job.spec.resolve().is_ok());
            prop_assert!(matches!(job.spec.body, JobBody::Characterize(_)));
        }
    }
}

/// The committed Fig. 8 example spec is the acceptance artifact: it must
/// keep expanding to at least 100 fully resolved jobs.
#[test]
fn committed_fig08_spec_expands_to_at_least_100_jobs() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/sweeps/fig08.json"
    );
    let text = std::fs::read_to_string(path).unwrap();
    let spec = SweepSpec::parse(&text).unwrap();
    let jobs = spec.expand().unwrap();
    assert!(
        jobs.len() >= 100,
        "fig08 expands to only {} jobs",
        jobs.len()
    );
    assert_eq!(jobs.len(), 108);
    assert_eq!(spec.id().len(), 16);
}

/// The committed smoke spec (the CI `sweep-smoke` victim) stays small.
#[test]
fn committed_smoke_spec_expands_to_eight_jobs() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/sweeps/smoke.json"
    );
    let text = std::fs::read_to_string(path).unwrap();
    assert_eq!(SweepSpec::parse(&text).unwrap().expand().unwrap().len(), 8);
}
