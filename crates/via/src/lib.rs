//! Via-array electromigration modeling (the paper's §3–§4, level 1).
//!
//! A power-grid via array is a redundant system: the failure of one via
//! raises the array resistance (Eq. 5, [`array::resistance_increase`]) and
//! redistributes current onto the survivors, accelerating them (TTF ∝ 1/j²).
//! This crate combines:
//!
//! * **array geometry and failure criteria** ([`mod@array`]) — via counts,
//!   resistance-ratio and open-circuit criteria,
//! * **precharacterized thermomechanical stress** ([`stress_table`]) — per-
//!   via peak `σ_T` for each (layer pair, pattern, configuration, wire
//!   width), either regenerated with the [`emgrid_fea`] engine or taken from
//!   the bundled reference table calibrated to the paper's Figs. 1/6/7,
//! * **current redistribution** ([`electrical`]) — a uniform model and a
//!   plate-network model that captures current crowding at perimeter vias,
//! * **the level-1 Monte Carlo** ([`mc`]) — Algorithm 1 with vias as
//!   components — and its **lognormal characterization** output
//!   ([`characterization`]) that feeds the power-grid level.
//!
//! # Example
//!
//! Characterize the paper's 4×4 Plus-shaped array and read off the TTF at
//! the `R = 2×` failure criterion:
//!
//! ```
//! use emgrid_via::prelude::*;
//!
//! let config = ViaArrayConfig::paper_4x4(IntersectionPattern::Plus);
//! let mc = ViaArrayMc::from_reference_table(&config, Technology::default(), 1e10);
//! let result = mc.characterize(500, 42);
//! let ttf = result.fit_lognormal(FailureCriterion::ResistanceRatio(2.0)).unwrap();
//! let years = ttf.median() / SECONDS_PER_YEAR;
//! assert!(years > 0.5 && years < 50.0, "median {years} years");
//! ```

pub mod analytic;
pub mod array;
pub mod cache;
pub mod characterization;
pub mod checkpoint;
pub mod electrical;
pub mod layout;
pub mod mc;
pub mod stress_table;
pub mod variation;

pub use analytic::WeakestLink;
pub use array::{resistance_increase, FailureCriterion, ViaArrayConfig};
pub use cache::{CacheEntry, StressCache};
pub use characterization::{CharacterizationResult, ViaArrayReliability};
pub use checkpoint::ViaCheckpoint;
pub use electrical::CurrentModel;
pub use layout::{ArrayFootprint, DesignRules};
pub use mc::{ViaArrayMc, ViaArraySample, ViaSession};
pub use stress_table::{
    FeaOptions, FeaPrimitiveReport, FeaReport, LayerPair, StressEntry, StressTable,
};
pub use variation::{VarianceDecomposition, Variation};

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::array::{resistance_increase, FailureCriterion, ViaArrayConfig};
    pub use crate::characterization::{CharacterizationResult, ViaArrayReliability};
    pub use crate::electrical::CurrentModel;
    pub use crate::mc::{ViaArrayMc, ViaArraySample};
    pub use crate::stress_table::{LayerPair, StressTable};
    pub use crate::variation::{VarianceDecomposition, Variation};
    pub use emgrid_em::{Technology, SECONDS_PER_YEAR};
    pub use emgrid_fea::geometry::{IntersectionPattern, ViaArrayGeometry};
}
