//! Persistent stress-characterization cache.
//!
//! Each FEA characterization of a primitive (paper §2's per-primitive
//! ABAQUS run) is a pure function of the model geometry, the material
//! table, the mesh resolution, the thermal load ΔT and the solver
//! selection. This module memoizes that function on disk: entries live
//! under `results/cache/` (one text file per content key), so the CLI and
//! the figure binaries skip already-characterized primitives across runs.
//!
//! **Key derivation.** The key is a 64-bit FNV-1a hash over a canonical
//! byte string listing every input the solve depends on — pattern, array
//! rows/cols/via-width/pitch, wire width, margin, resolution, all nine
//! stack thicknesses, both temperatures, every material's (E, ν, α) and
//! a solver-method descriptor — with each `f64` rendered as the hex of
//! its IEEE-754 bit pattern, so keys never suffer from formatting
//! round-off. The connected [`LayerPair`](crate::LayerPair) is *not* part
//! of the key: the elastic solve does not depend on it, so two table rows
//! differing only in layer pair share one cached solve.
//!
//! **Entry format.** A versioned text file storing the per-via peak
//! stresses *and* the full nodal displacement vector, both as `f64` bit
//! patterns in hex. The stress values serve the table-building fast path
//! (no meshing at all); the displacements let a figure binary rebuild the
//! entire [`StressField`] bit-exactly (meshing is deterministic, so
//! recovery from cached displacements reproduces every scan value).
//!
//! Set `EMGRID_NO_CACHE=1` (or pass `--no-cache` to the CLI) to bypass
//! both lookup and storage.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process;
use std::sync::atomic::{AtomicU64, Ordering};

use emgrid_fea::geometry::CharacterizationModel;
use emgrid_fea::model::SolveMethod;
use emgrid_fea::stress::StressField;
use emgrid_runtime::obs;
use emgrid_sparse::Ordering as FactorOrdering;

/// Format tag written as the first line of every entry; bump on any layout
/// change so stale entries read as misses instead of garbage.
const FORMAT: &str = "emgrid-stress-cache-v1";

/// Tie-breaker for concurrent writers of the same key (see
/// [`StressCache::store`]).
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory of cached characterization results.
#[derive(Debug, Clone)]
pub struct StressCache {
    dir: PathBuf,
}

/// A cache entry: everything a solve produced that downstream consumers
/// need.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Peak tensile hydrostatic stress beneath each via, Pa, row-major.
    pub per_via_stress: Vec<f64>,
    /// Full nodal displacement vector of the solve, µm.
    pub displacements: Vec<f64>,
}

impl StressCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StressCache { dir: dir.into() }
    }

    /// The conventional location: the `EMGRID_CACHE_DIR` environment
    /// variable when set and non-empty (so daemon workers and CI jobs can
    /// keep separate caches), otherwise `results/cache/` under the working
    /// directory.
    pub fn default_dir() -> PathBuf {
        match std::env::var("EMGRID_CACHE_DIR") {
            Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
            _ => PathBuf::from("results").join("cache"),
        }
    }

    /// Whether `EMGRID_NO_CACHE` asks to bypass caching entirely.
    pub fn disabled_by_env() -> bool {
        std::env::var("EMGRID_NO_CACHE").is_ok_and(|v| !v.is_empty() && v != "0")
    }

    /// The cache at [`default_dir`](Self::default_dir), or `None` when
    /// disabled via `EMGRID_NO_CACHE`.
    pub fn open_default() -> Option<Self> {
        if Self::disabled_by_env() {
            None
        } else {
            Some(Self::new(Self::default_dir()))
        }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Content key of a `(model, solver)` pair; see the module docs for
    /// what it covers. The fill-reducing ordering participates because it
    /// changes the direct solve's rounding, and cached stress fields must
    /// reproduce a live solve bit for bit.
    pub fn key(
        model: &CharacterizationModel,
        method: &SolveMethod,
        ordering: FactorOrdering,
    ) -> u64 {
        fn bits(s: &mut String, v: f64) {
            s.push_str(&format!(" {:016x}", v.to_bits()));
        }
        let mut s = String::with_capacity(1024);
        s.push_str(FORMAT);
        s.push_str(&format!(" pattern:{}", model.pattern));
        s.push_str(&format!(" array:{}x{}", model.array.rows, model.array.cols));
        bits(&mut s, model.array.via_width);
        bits(&mut s, model.array.pitch);
        bits(&mut s, model.wire_width);
        bits(&mut s, model.margin);
        bits(&mut s, model.resolution);
        let st = &model.stack;
        for v in [
            st.substrate,
            st.ild_under,
            st.metal_lower,
            st.cap_lower,
            st.via_height,
            st.metal_upper,
            st.cap_upper,
            st.overburden,
            st.barrier,
        ] {
            bits(&mut s, v);
        }
        bits(&mut s, model.anneal_temperature);
        bits(&mut s, model.operating_temperature);
        for m in emgrid_fea::geometry::stack_materials() {
            s.push_str(&format!(" mat:{}", m.name));
            bits(&mut s, m.youngs_modulus);
            bits(&mut s, m.poisson_ratio);
            bits(&mut s, m.cte);
        }
        match method {
            SolveMethod::Auto { direct_limit } => {
                s.push_str(&format!(" method:auto:{direct_limit}"));
            }
            SolveMethod::Direct => s.push_str(" method:direct"),
            SolveMethod::Iterative {
                tolerance,
                max_iterations,
            } => {
                s.push_str(&format!(" method:iter:{max_iterations}"));
                bits(&mut s, *tolerance);
            }
        }
        s.push_str(&format!(" ordering:{}", ordering.label()));
        fnv1a(s.as_bytes())
    }

    /// Path of the entry file for `key`.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.stress"))
    }

    /// Loads the entry for `key`, or `None` on miss / unreadable /
    /// mismatched entry.
    pub fn load(&self, key: u64) -> Option<CacheEntry> {
        let entry = fs::read_to_string(self.entry_path(key))
            .ok()
            .and_then(|text| parse_entry(&text, key));
        match entry {
            Some(_) => obs::counter(
                "emgrid_stress_cache_hits_total",
                "Stress-cache lookups served from disk.",
            )
            .inc(),
            None => obs::counter(
                "emgrid_stress_cache_misses_total",
                "Stress-cache lookups that fell through to a solve.",
            )
            .inc(),
        }
        entry
    }

    /// Loads the entry for `key` and reconstructs the full stress field by
    /// re-meshing `model` and recovering stresses from the cached
    /// displacements. Returns `None` on miss or if the cached vector does
    /// not fit the rebuilt mesh (e.g. after a geometry change that a hash
    /// collision let through).
    pub fn load_field(&self, key: u64, model: &CharacterizationModel) -> Option<StressField> {
        let entry = self.load(key)?;
        let mesh = model.build_mesh();
        if entry.displacements.len() != 3 * mesh.node_count() {
            return None;
        }
        Some(StressField::from_displacements(
            *model,
            mesh,
            &entry.displacements,
        ))
    }

    /// Persists an entry for `key`. Best-effort by design: callers treat a
    /// failed store as "cache stays cold", never as a solve failure.
    ///
    /// The write goes to a unique temp file first and is moved into place
    /// with `rename`, so concurrent writers of the same key (two fan-out
    /// workers solving layer-pair twins) each land a complete file and the
    /// last rename wins.
    pub fn store(&self, key: u64, entry: &CacheEntry) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(key);
        let tmp = self.dir.join(format!(
            ".{key:016x}.{}.{}.tmp",
            process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let mut text = String::with_capacity(
            32 + 17 * (entry.per_via_stress.len() + entry.displacements.len()),
        );
        text.push_str(FORMAT);
        text.push('\n');
        text.push_str(&format!("key {key:016x}\n"));
        text.push_str(&format!("per_via {}\n", entry.per_via_stress.len()));
        push_bits_lines(&mut text, &entry.per_via_stress);
        text.push_str(&format!("displacements {}\n", entry.displacements.len()));
        push_bits_lines(&mut text, &entry.displacements);
        fs::write(&tmp, text)?;
        fs::rename(&tmp, &path)?;
        obs::counter(
            "emgrid_stress_cache_stores_total",
            "Stress-cache entries persisted.",
        )
        .inc();
        Ok(path)
    }
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes `values` as space-separated hex bit patterns, eight per line.
fn push_bits_lines(out: &mut String, values: &[f64]) {
    for chunk in values.chunks(8) {
        for (i, v) in chunk.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{:016x}", v.to_bits()));
        }
        out.push('\n');
    }
}

fn parse_entry(text: &str, key: u64) -> Option<CacheEntry> {
    let mut tokens = text.split_whitespace();
    if tokens.next()? != FORMAT {
        return None;
    }
    if tokens.next()? != "key" {
        return None;
    }
    if u64::from_str_radix(tokens.next()?, 16).ok()? != key {
        return None;
    }
    if tokens.next()? != "per_via" {
        return None;
    }
    let n: usize = tokens.next()?.parse().ok()?;
    let per_via_stress = parse_bits(&mut tokens, n)?;
    if tokens.next()? != "displacements" {
        return None;
    }
    let n: usize = tokens.next()?.parse().ok()?;
    let displacements = parse_bits(&mut tokens, n)?;
    Some(CacheEntry {
        per_via_stress,
        displacements,
    })
}

fn parse_bits<'a>(tokens: &mut impl Iterator<Item = &'a str>, n: usize) -> Option<Vec<f64>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(f64::from_bits(
            u64::from_str_radix(tokens.next()?, 16).ok()?,
        ));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emgrid_fea::geometry::ViaArrayGeometry;

    fn small_model() -> CharacterizationModel {
        CharacterizationModel {
            array: ViaArrayGeometry::square(2, 0.5, 1.0),
            margin: 0.5,
            resolution: 0.5,
            ..CharacterizationModel::default()
        }
    }

    fn temp_cache(tag: &str) -> StressCache {
        let dir = std::env::temp_dir().join(format!("emgrid-cache-test-{tag}-{}", process::id()));
        let _ = fs::remove_dir_all(&dir);
        StressCache::new(dir)
    }

    #[test]
    fn key_is_stable_and_sensitive_to_inputs() {
        let m = small_model();
        let method = SolveMethod::default();
        let base = StressCache::key(&m, &method, FactorOrdering::Amd);
        assert_eq!(
            base,
            StressCache::key(&m, &method, FactorOrdering::Amd),
            "key must be stable"
        );

        let mut finer = m;
        finer.resolution = 0.25;
        assert_ne!(base, StressCache::key(&finer, &method, FactorOrdering::Amd));

        let mut hotter = m;
        hotter.operating_temperature += 25.0; // changes ΔT
        assert_ne!(
            base,
            StressCache::key(&hotter, &method, FactorOrdering::Amd)
        );

        let mut wider = m;
        wider.wire_width += 0.5;
        assert_ne!(base, StressCache::key(&wider, &method, FactorOrdering::Amd));

        let tighter = SolveMethod::Iterative {
            tolerance: 1e-9,
            max_iterations: 1000,
        };
        assert_ne!(base, StressCache::key(&m, &tighter, FactorOrdering::Amd));
    }

    #[test]
    fn round_trip_preserves_exact_bits() {
        let cache = temp_cache("roundtrip");
        let entry = CacheEntry {
            per_via_stress: vec![2.7e8, 2.31e8, -0.0, f64::MIN_POSITIVE],
            displacements: (0..100).map(|i| (i as f64 * 0.3).sin() * 1e-3).collect(),
        };
        let key = 0xdead_beef_0123_4567;
        cache.store(key, &entry).unwrap();
        let back = cache.load(key).expect("entry readable");
        assert_eq!(back, entry);
        // Bit-exactness, not just value equality.
        for (a, b) in back.displacements.iter().zip(&entry.displacements) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn missing_and_corrupt_entries_are_misses() {
        let cache = temp_cache("corrupt");
        assert!(cache.load(42).is_none(), "cold cache misses");
        fs::create_dir_all(cache.dir()).unwrap();
        fs::write(cache.entry_path(42), "not a cache entry").unwrap();
        assert!(cache.load(42).is_none(), "garbage reads as a miss");
        // An entry stored under a different key is rejected by the key line.
        let entry = CacheEntry {
            per_via_stress: vec![1.0],
            displacements: vec![],
        };
        cache.store(7, &entry).unwrap();
        fs::rename(cache.entry_path(7), cache.entry_path(42)).unwrap();
        assert!(cache.load(42).is_none(), "key mismatch reads as a miss");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn env_kill_switch_disables_default_cache() {
        // Process-wide env mutation: runs in one test to avoid races.
        std::env::set_var("EMGRID_NO_CACHE", "1");
        assert!(StressCache::disabled_by_env());
        assert!(StressCache::open_default().is_none());
        std::env::set_var("EMGRID_NO_CACHE", "0");
        assert!(!StressCache::disabled_by_env());
        std::env::remove_var("EMGRID_NO_CACHE");
    }

    #[test]
    fn env_override_redirects_default_dir() {
        // Same process-wide-env caveat as above: one test, no parallel
        // readers of EMGRID_CACHE_DIR.
        std::env::remove_var("EMGRID_CACHE_DIR");
        assert_eq!(
            StressCache::default_dir(),
            PathBuf::from("results").join("cache")
        );
        std::env::set_var("EMGRID_CACHE_DIR", "/tmp/emgrid-alt-cache");
        assert_eq!(
            StressCache::default_dir(),
            PathBuf::from("/tmp/emgrid-alt-cache")
        );
        assert_eq!(
            StressCache::new(StressCache::default_dir()).dir(),
            Path::new("/tmp/emgrid-alt-cache")
        );
        // Empty means unset, not "cache in the working directory".
        std::env::set_var("EMGRID_CACHE_DIR", "");
        assert_eq!(
            StressCache::default_dir(),
            PathBuf::from("results").join("cache")
        );
        std::env::remove_var("EMGRID_CACHE_DIR");
    }
}
