//! Serialized state of an interrupted via-array characterization session.
//!
//! Same discipline as the grid checkpoint: line-oriented text, every `f64`
//! stored as its 16-hex-digit IEEE-754 bit pattern, so the committed
//! samples and Welford accumulator restore bit-exactly and the resumed run
//! reproduces an uninterrupted characterization:
//!
//! ```text
//! emgrid-via-checkpoint-v1
//! stream <count> <mean> <m2> <min> <max>
//! sample <failure time> <failure time> ...
//! sample ...
//! ```

use std::fmt;
use std::fmt::Write as _;

use emgrid_stats::OnlineStats;

use crate::mc::ViaArraySample;

const FORMAT: &str = "emgrid-via-checkpoint-v1";

/// A malformed or truncated checkpoint (treated as absent: the
/// characterization restarts from trial zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError(pub String);

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad via checkpoint: {}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

/// Committed state of a characterization run: a prefix of per-trial samples
/// plus the open-circuit `ln TTF` stream over exactly those trials.
#[derive(Debug, Clone, PartialEq)]
pub struct ViaCheckpoint {
    /// Samples of trials `0..samples.len()`, in trial order.
    pub samples: Vec<ViaArraySample>,
    /// The observable stream over those samples.
    pub stream: OnlineStats,
}

impl ViaCheckpoint {
    /// Serializes to the versioned text format.
    pub fn encode(&self) -> String {
        let (count, mean, m2, min, max) = self.stream.raw_parts();
        let mut out = String::new();
        let _ = writeln!(out, "{FORMAT}");
        let _ = writeln!(
            out,
            "stream {count} {} {} {} {}",
            hex(mean),
            hex(m2),
            hex(min),
            hex(max)
        );
        for sample in &self.samples {
            out.push_str("sample");
            for t in &sample.failure_times {
                let _ = write!(out, " {}", hex(*t));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text format back, validating the header and that the
    /// stream count matches the number of sample lines.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on any malformed line or count mismatch.
    pub fn decode(text: &str) -> Result<Self, CheckpointError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(FORMAT) => {}
            other => return Err(CheckpointError(format!("bad header {other:?}"))),
        }
        let stream_line = lines
            .next()
            .ok_or_else(|| CheckpointError("missing stream line".into()))?;
        let mut fields = stream_line.split_whitespace();
        if fields.next() != Some("stream") {
            return Err(CheckpointError("missing stream line".into()));
        }
        let count: u64 = fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError("bad stream count".into()))?;
        let mut next_f64 = || -> Result<f64, CheckpointError> {
            parse_hex(
                fields
                    .next()
                    .ok_or_else(|| CheckpointError("short stream line".into()))?,
            )
        };
        let mean = next_f64()?;
        let m2 = next_f64()?;
        let min = next_f64()?;
        let max = next_f64()?;
        let stream = OnlineStats::from_raw_parts(count, mean, m2, min, max);

        let mut samples = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            if fields.next() != Some("sample") {
                return Err(CheckpointError(format!("bad line {line:?}")));
            }
            let failure_times = fields.map(parse_hex).collect::<Result<Vec<f64>, _>>()?;
            if failure_times.is_empty() {
                return Err(CheckpointError("sample line without times".into()));
            }
            samples.push(ViaArraySample { failure_times });
        }
        if samples.len() as u64 != count {
            return Err(CheckpointError(format!(
                "stream count {count} != {} sample lines",
                samples.len()
            )));
        }
        Ok(ViaCheckpoint { samples, stream })
    }
}

fn hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_hex(s: &str) -> Result<f64, CheckpointError> {
    if s.len() != 16 {
        return Err(CheckpointError(format!("bad f64 field {s:?}")));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError(format!("bad f64 field {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> ViaCheckpoint {
        let samples = vec![
            ViaArraySample {
                failure_times: vec![1.0e7, 2.5e7, 3.125e7],
            },
            ViaArraySample {
                failure_times: vec![0.5e7, 0.75e7, f64::MAX],
            },
        ];
        let mut stream = OnlineStats::new();
        for s in &samples {
            stream.push(s.failure_times[2].max(f64::MIN_POSITIVE).ln());
        }
        ViaCheckpoint { samples, stream }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let cp = sample_checkpoint();
        let back = ViaCheckpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back, cp);
        assert_eq!(back.stream.mean().to_bits(), cp.stream.mean().to_bits());
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let good = sample_checkpoint().encode();
        assert!(ViaCheckpoint::decode("").is_err());
        assert!(ViaCheckpoint::decode("emgrid-grid-checkpoint-v1\n").is_err());
        let truncated: String = good.lines().take(3).map(|l| format!("{l}\n")).collect();
        assert!(ViaCheckpoint::decode(&truncated).is_err());
        assert!(ViaCheckpoint::decode(&good.replace("sample", "simple")).is_err());
    }
}
