//! Via-array TTF characterization: from Monte Carlo samples to the
//! two-parameter lognormal handed to the power-grid analysis (paper §5.1,
//! last paragraph).

use emgrid_runtime::RunReport;
use emgrid_stats::Rng;
use emgrid_stats::{ks_statistic, Ecdf, InvalidParameterError, LogNormal};

use crate::array::{FailureCriterion, ViaArrayConfig};
use crate::mc::ViaArraySample;

/// The collected trials of a via-array characterization run.
#[derive(Debug, Clone)]
pub struct CharacterizationResult {
    config: ViaArrayConfig,
    reference_current_density: f64,
    samples: Vec<ViaArraySample>,
    report: RunReport,
}

impl CharacterizationResult {
    /// Wraps raw Monte Carlo samples (with a placeholder execution report;
    /// scheduler-produced results carry a real one via
    /// [`CharacterizationResult::with_report`]).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or a sample has the wrong via count.
    pub fn new(
        config: ViaArrayConfig,
        reference_current_density: f64,
        samples: Vec<ViaArraySample>,
    ) -> Self {
        let report = RunReport::unscheduled(samples.len());
        Self::with_report(config, reference_current_density, samples, report)
    }

    /// Wraps samples together with the [`RunReport`] of the scheduler run
    /// that produced them.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or a sample has the wrong via count.
    pub fn with_report(
        config: ViaArrayConfig,
        reference_current_density: f64,
        samples: Vec<ViaArraySample>,
        report: RunReport,
    ) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        for s in &samples {
            assert_eq!(
                s.failure_times.len(),
                config.count(),
                "sample via count mismatch"
            );
        }
        CharacterizationResult {
            config,
            reference_current_density,
            samples,
            report,
        }
    }

    /// The characterized configuration.
    pub fn config(&self) -> &ViaArrayConfig {
        &self.config
    }

    /// Execution telemetry: trials run vs requested, threads, early-stop
    /// outcome, wall-clock, and the streamed `ln TTF` statistics.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Current density the characterization was run at, A/m².
    pub fn reference_current_density(&self) -> f64 {
        self.reference_current_density
    }

    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.samples.len()
    }

    /// The raw per-trial samples.
    pub fn samples(&self) -> &[ViaArraySample] {
        &self.samples
    }

    /// Array TTF per trial (seconds) under a failure criterion.
    pub fn ttf_samples(&self, criterion: FailureCriterion) -> Vec<f64> {
        let k = criterion.failures_to_trip(self.config.count());
        self.samples.iter().map(|s| s.time_of_failure(k)).collect()
    }

    /// Empirical CDF of the array TTF under a criterion — the curves of the
    /// paper's Figs. 8 and 9.
    pub fn ecdf(&self, criterion: FailureCriterion) -> Ecdf {
        Ecdf::new(self.ttf_samples(criterion))
    }

    /// Fits the two-parameter lognormal the power-grid level samples from.
    ///
    /// Zero TTFs (a via whose critical stress was below its preexisting
    /// stress — vanishingly rare at the paper's parameters) are clamped to
    /// one hour before the log-space fit.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if the samples are degenerate
    /// (fewer than two trials or zero variance).
    pub fn fit_lognormal(
        &self,
        criterion: FailureCriterion,
    ) -> Result<LogNormal, InvalidParameterError> {
        let floor = 3600.0;
        let samples: Vec<f64> = self
            .ttf_samples(criterion)
            .into_iter()
            .map(|t| t.max(floor))
            .collect();
        LogNormal::fit_mle(&samples)
    }

    /// Kolmogorov–Smirnov distance between the empirical TTF and its
    /// lognormal fit — a quality check on the two-parameter reduction.
    ///
    /// # Errors
    ///
    /// Propagates fit failures.
    pub fn fit_quality(&self, criterion: FailureCriterion) -> Result<f64, InvalidParameterError> {
        let fit = self.fit_lognormal(criterion)?;
        Ok(ks_statistic(&self.ecdf(criterion), |x| fit.cdf(x)))
    }

    /// Packages the fit as a [`ViaArrayReliability`] for the grid level.
    ///
    /// # Errors
    ///
    /// Propagates fit failures.
    pub fn reliability(
        &self,
        criterion: FailureCriterion,
    ) -> Result<ViaArrayReliability, InvalidParameterError> {
        Ok(ViaArrayReliability {
            config: self.config,
            criterion,
            distribution: self.fit_lognormal(criterion)?,
            reference_current_density: self.reference_current_density,
        })
    }
}

/// The precharacterized reliability of one via-array configuration: a
/// lognormal TTF at a reference current density, rescalable to any other
/// current (TTF ∝ 1/j²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViaArrayReliability {
    /// The characterized configuration.
    pub config: ViaArrayConfig,
    /// Failure criterion the TTF corresponds to.
    pub criterion: FailureCriterion,
    /// Fitted lognormal TTF (seconds) at the reference current density.
    pub distribution: LogNormal,
    /// Reference current density, A/m².
    pub reference_current_density: f64,
}

impl ViaArrayReliability {
    /// The TTF distribution at an arbitrary operating current density —
    /// the paper's "for any other current, the TTF can be scaled using (3)".
    ///
    /// # Panics
    ///
    /// Panics if `j <= 0`.
    pub fn distribution_at(&self, j: f64) -> LogNormal {
        assert!(j > 0.0, "current density must be positive");
        let ratio = self.reference_current_density / j;
        self.distribution
            .scaled(ratio * ratio)
            .expect("positive scale factor")
    }

    /// Samples one TTF (seconds) at current density `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j <= 0`.
    pub fn sample_ttf<R: Rng + ?Sized>(&self, j: f64, rng: &mut R) -> f64 {
        self.distribution_at(j).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::ViaArrayMc;
    use emgrid_em::{Technology, SECONDS_PER_YEAR};
    use emgrid_fea::geometry::IntersectionPattern;
    use emgrid_stats::ks::ks_critical_value;
    use emgrid_stats::seeded_rng;

    fn result() -> CharacterizationResult {
        ViaArrayMc::from_reference_table(
            &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
            Technology::default(),
            1e10,
        )
        .characterize(500, 31)
    }

    #[test]
    fn lognormal_fit_is_ks_acceptable() {
        // The paper asserts the array TTF is well approximated as lognormal;
        // check the fit passes a 1% KS test at the R=inf criterion.
        let r = result();
        let d = r.fit_quality(FailureCriterion::OpenCircuit).unwrap();
        assert!(d < ks_critical_value(r.trials(), 0.01), "KS {d}");
    }

    #[test]
    fn stricter_criteria_give_smaller_medians() {
        let r = result();
        let m1 = r.ecdf(FailureCriterion::WeakestLink).median();
        let m8 = r.ecdf(FailureCriterion::ViaCount(8)).median();
        let minf = r.ecdf(FailureCriterion::OpenCircuit).median();
        assert!(m1 < m8 && m8 < minf);
    }

    #[test]
    fn reliability_rescales_with_current_squared() {
        let rel = result().reliability(FailureCriterion::OpenCircuit).unwrap();
        let base = rel.distribution_at(1e10).median();
        let double = rel.distribution_at(2e10).median();
        assert!((base / double - 4.0).abs() < 1e-9);
        // Reference density reproduces the fitted distribution.
        assert!((rel.distribution_at(1e10).median() - rel.distribution.median()).abs() < 1e-6);
    }

    #[test]
    fn sampled_ttfs_follow_the_distribution() {
        let rel = result().reliability(FailureCriterion::OpenCircuit).unwrap();
        let mut rng = seeded_rng(5);
        let samples: Vec<f64> = (0..2000).map(|_| rel.sample_ttf(1e10, &mut rng)).collect();
        let e = Ecdf::new(samples);
        let d = ks_statistic(&e, |x| rel.distribution.cdf(x));
        assert!(d < ks_critical_value(2000, 0.01), "KS {d}");
    }

    #[test]
    fn medians_are_in_paper_year_range() {
        // Fig. 8(a): medians between ~2 and ~15 years across criteria.
        let r = result();
        for crit in [
            FailureCriterion::WeakestLink,
            FailureCriterion::ViaCount(8),
            FailureCriterion::OpenCircuit,
        ] {
            let m = r.ecdf(crit).median() / SECONDS_PER_YEAR;
            assert!(m > 0.5 && m < 30.0, "{crit}: {m} years");
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_rejected() {
        CharacterizationResult::new(
            ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
            1e10,
            Vec::new(),
        );
    }
}
