//! Area-aware via-array layout (the paper's stated future work).
//!
//! The paper's §6 notes: *"our analysis assumes that each via array
//! configuration occupies the same area. In practice, a larger via array
//! may occupy a larger area as a consequence of minimum spacing rules for
//! vias."* This module supplies that missing piece: minimum-width /
//! spacing / enclosure design rules, footprint computation, feasibility
//! checks against the wire width, and constructors for equal-conducting-
//! area arrays that respect the rules — so lifetime-vs-area trade-offs can
//! be explored quantitatively (see the `mixed_assignment` example).

use emgrid_fea::geometry::ViaArrayGeometry;

/// Minimum-geometry rules for via arrays (all µm).
///
/// # Example
///
/// ```
/// use emgrid_via::layout::{equal_area_array, footprint, DesignRules};
///
/// let rules = DesignRules::default();
/// // The minimum via width caps the equal-area (1 µm²) split at 10x10;
/// // the paper's 8x8 is comfortably legal in a 2 µm wire.
/// let (n, geometry) = emgrid_via::layout::max_equal_area_array(1.0, &rules, 2.0).unwrap();
/// assert_eq!(n, 10);
/// assert!(footprint(&geometry, &rules).area() > 1.0);
/// assert!(equal_area_array(8, 1.0, &rules, 2.0).is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignRules {
    /// Smallest manufacturable via side.
    pub min_via_width: f64,
    /// Smallest edge-to-edge spacing between vias.
    pub min_via_spacing: f64,
    /// Wire metal must enclose the array by this much on every side.
    pub min_enclosure: f64,
}

impl Default for DesignRules {
    fn default() -> Self {
        // Representative upper-metal rules for a 32 nm-class node.
        DesignRules {
            min_via_width: 0.10,
            min_via_spacing: 0.10,
            min_enclosure: 0.05,
        }
    }
}

/// The layout footprint of a via array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayFootprint {
    /// Extent along x including enclosure, µm.
    pub width_x: f64,
    /// Extent along y including enclosure, µm.
    pub width_y: f64,
}

impl ArrayFootprint {
    /// Occupied area, µm².
    pub fn area(&self) -> f64 {
        self.width_x * self.width_y
    }
}

/// Footprint of an array under the given rules.
pub fn footprint(geometry: &ViaArrayGeometry, rules: &DesignRules) -> ArrayFootprint {
    ArrayFootprint {
        width_x: geometry.span_x() + 2.0 * rules.min_enclosure,
        width_y: geometry.span_y() + 2.0 * rules.min_enclosure,
    }
}

/// Whether an array is manufacturable under the rules and fits in a wire of
/// the given width (the array's y extent must fit across the wire).
pub fn is_legal(geometry: &ViaArrayGeometry, rules: &DesignRules, wire_width: f64) -> bool {
    let spacing = geometry.pitch - geometry.via_width;
    geometry.via_width >= rules.min_via_width - 1e-12
        && (geometry.count() == 1 || spacing >= rules.min_via_spacing - 1e-12)
        && footprint(geometry, rules).width_y <= wire_width + 1e-12
}

/// Builds the `n × n` array with a **total conducting area** of
/// `conducting_area` µm² (the paper holds this at 1 µm² so all
/// configurations match in nominal resistance) at minimum legal pitch.
///
/// Returns `None` when the required via size violates `min_via_width` or
/// the array cannot fit across the wire.
pub fn equal_area_array(
    n: usize,
    conducting_area: f64,
    rules: &DesignRules,
    wire_width: f64,
) -> Option<ViaArrayGeometry> {
    if n == 0 || conducting_area <= 0.0 {
        return None;
    }
    let via_width = (conducting_area / (n * n) as f64).sqrt();
    if via_width < rules.min_via_width - 1e-12 {
        return None;
    }
    let geometry = ViaArrayGeometry::square(n, via_width, via_width + rules.min_via_spacing);
    is_legal(&geometry, rules, wire_width).then_some(geometry)
}

/// The largest legal `n × n` equal-area configuration for a wire, scanning
/// upward from 1×1. Returns the geometry and `n`.
pub fn max_equal_area_array(
    conducting_area: f64,
    rules: &DesignRules,
    wire_width: f64,
) -> Option<(usize, ViaArrayGeometry)> {
    let mut best = None;
    for n in 1..=64 {
        if let Some(g) = equal_area_array(n, conducting_area, rules, wire_width) {
            best = Some((n, g));
        }
    }
    best
}

/// Area penalty of `geometry` relative to `reference`, as a ratio of
/// footprints (> 1 means `geometry` occupies more metal).
pub fn area_penalty(
    geometry: &ViaArrayGeometry,
    reference: &ViaArrayGeometry,
    rules: &DesignRules,
) -> f64 {
    footprint(geometry, rules).area() / footprint(reference, rules).area()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations_are_legal_in_2um_wire() {
        let rules = DesignRules::default();
        for g in [
            ViaArrayGeometry::paper_1x1(),
            ViaArrayGeometry::paper_4x4(),
            ViaArrayGeometry::paper_8x8(),
        ] {
            assert!(is_legal(&g, &rules, 2.0), "{g:?}");
        }
    }

    #[test]
    fn paper_8x8_pitch_exceeds_min_spacing() {
        // paper 8x8: 0.125 via, 0.25 pitch -> 0.125 spacing >= 0.10.
        let g = ViaArrayGeometry::paper_8x8();
        assert!(g.pitch - g.via_width >= 0.10);
    }

    #[test]
    fn equal_area_respects_min_width() {
        let rules = DesignRules::default();
        // 1 µm² split 10x10 needs 0.1 µm vias: exactly at the limit.
        assert!(equal_area_array(10, 1.0, &rules, 3.0).is_some());
        // 11x11 would need ~0.091 µm vias: illegal.
        assert!(equal_area_array(11, 1.0, &rules, 3.0).is_none());
    }

    #[test]
    fn equal_area_conserves_conducting_area() {
        let rules = DesignRules::default();
        for n in [1usize, 2, 4, 8] {
            let g = equal_area_array(n, 1.0, &rules, 4.0).unwrap();
            assert!((g.effective_area() - 1.0).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn larger_arrays_pay_an_area_penalty() {
        // The paper's future-work point, quantified: at equal conducting
        // area and minimum spacing, footprint grows with the array size.
        let rules = DesignRules::default();
        let g2 = equal_area_array(2, 1.0, &rules, 4.0).unwrap();
        let g4 = equal_area_array(4, 1.0, &rules, 4.0).unwrap();
        let g8 = equal_area_array(8, 1.0, &rules, 4.0).unwrap();
        assert!(area_penalty(&g4, &g2, &rules) > 1.0);
        assert!(area_penalty(&g8, &g4, &rules) > 1.0);
    }

    #[test]
    fn wire_width_limits_the_array() {
        let rules = DesignRules::default();
        // In a 1 µm wire, only small equal-area arrays fit.
        let max_narrow = max_equal_area_array(1.0, &rules, 1.2).map(|(n, _)| n);
        let max_wide = max_equal_area_array(1.0, &rules, 3.0).map(|(n, _)| n);
        assert!(max_narrow.is_some());
        assert!(max_wide.unwrap() > max_narrow.unwrap());
        assert!(max_wide.unwrap() <= 10); // min via width caps it
    }

    #[test]
    fn footprint_includes_enclosure() {
        let rules = DesignRules::default();
        let g = ViaArrayGeometry::paper_4x4();
        let f = footprint(&g, &rules);
        assert!((f.width_x - (g.span_x() + 0.1)).abs() < 1e-12);
        assert!(f.area() > g.span_x() * g.span_y());
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        let rules = DesignRules::default();
        assert!(equal_area_array(0, 1.0, &rules, 2.0).is_none());
        assert!(equal_area_array(4, 0.0, &rules, 2.0).is_none());
        assert!(equal_area_array(4, -1.0, &rules, 2.0).is_none());
    }
}
