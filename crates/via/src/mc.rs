//! Level-1 Monte Carlo: Algorithm 1 with **vias** as the components of a
//! **via-array** system.
//!
//! Each trial samples a critical stress per via (Eq. 4), computes nucleation
//! lifetimes under the initial current split, then plays failures forward:
//! the earliest via dies, current redistributes over the survivors, and
//! their *remaining* life rescales by `(j_old/j_new)²` (the paper's
//! "recalculate new current flow, TTF for components" step). The trial
//! records the absolute time of every via failure, from which any failure
//! criterion can be evaluated after the fact.

use emgrid_em::void_growth::GrowthModel;
use emgrid_em::{nucleation, Technology};
use emgrid_runtime::{CancelToken, RuntimeConfig, SessionState, TrialSession};
use emgrid_stats::Rng;

use crate::array::{FailureCriterion, ViaArrayConfig};
use crate::characterization::CharacterizationResult;
use crate::checkpoint::ViaCheckpoint;
use crate::electrical::CurrentModel;
use crate::stress_table::{LayerPair, StressTable};
use crate::variation::{self, VarianceDecomposition, Variation};

/// One Monte Carlo trial: the absolute failure time (seconds) of the k-th
/// via to die, for k = 1..=n (non-decreasing).
#[derive(Debug, Clone, PartialEq)]
pub struct ViaArraySample {
    /// `failure_times[k]` is the time of the (k+1)-th via failure.
    pub failure_times: Vec<f64>,
}

impl ViaArraySample {
    /// Time at which `n_f` vias have failed.
    ///
    /// # Panics
    ///
    /// Panics if `n_f` is zero or exceeds the via count.
    pub fn time_of_failure(&self, n_f: usize) -> f64 {
        assert!(
            n_f >= 1 && n_f <= self.failure_times.len(),
            "n_f {n_f} out of range"
        );
        self.failure_times[n_f - 1]
    }
}

/// A configured level-1 Monte Carlo simulator for one via array.
#[derive(Debug, Clone)]
pub struct ViaArrayMc {
    config: ViaArrayConfig,
    tech: Technology,
    /// Per-via thermomechanical stress `σ_T`, Pa, row-major.
    sigma_t: Vec<f64>,
    /// Total current density across the effective area, A/m².
    current_density: f64,
    current_model: CurrentModel,
    growth: Option<GrowthModel>,
    variation: Option<Variation>,
}

impl ViaArrayMc {
    /// Creates a simulator with explicit per-via stresses.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_t.len()` differs from the via count or
    /// `current_density <= 0`.
    pub fn new(
        config: ViaArrayConfig,
        tech: Technology,
        sigma_t: Vec<f64>,
        current_density: f64,
    ) -> Self {
        assert_eq!(
            sigma_t.len(),
            config.count(),
            "need one stress value per via"
        );
        assert!(current_density > 0.0, "current density must be positive");
        ViaArrayMc {
            config,
            tech,
            sigma_t,
            current_density,
            current_model: CurrentModel::default(),
            growth: None,
            variation: None,
        }
    }

    /// Creates a simulator using the bundled reference stress table.
    pub fn from_reference_table(
        config: &ViaArrayConfig,
        tech: Technology,
        current_density: f64,
    ) -> Self {
        let table = StressTable::reference();
        Self::from_table(&table, config, tech, current_density)
            .expect("reference table covers the paper configurations")
    }

    /// Creates a simulator from a caller-supplied stress table.
    ///
    /// Returns `None` if the table has no entry for the configuration.
    pub fn from_table(
        table: &StressTable,
        config: &ViaArrayConfig,
        tech: Technology,
        current_density: f64,
    ) -> Option<Self> {
        let sigma_t = table.lookup(
            config.layer_pair,
            config.pattern,
            config.geometry.rows,
            config.geometry.cols,
            config.wire_width,
        )?;
        Some(Self::new(*config, tech, sigma_t, current_density))
    }

    /// Selects the current redistribution model (default: uniform).
    pub fn with_current_model(mut self, model: CurrentModel) -> Self {
        self.current_model = model;
        self
    }

    /// Adds a void-growth stage to every via lifetime (default: nucleation
    /// only, per the paper's Cu slit-void argument).
    pub fn with_growth(mut self, growth: GrowthModel) -> Self {
        self.growth = Some(growth);
        self
    }

    /// Enables on-die variation: trials draw void, temperature-field, and
    /// linewidth-field samples from independent derived sub-streams instead
    /// of the legacy single trial stream (default: nominal model).
    pub fn with_variation(mut self, variation: Variation) -> Self {
        self.variation = Some(variation);
        self
    }

    /// The configured variation, if any.
    pub fn variation(&self) -> Option<&Variation> {
        self.variation.as_ref()
    }

    /// The simulated configuration.
    pub fn config(&self) -> &ViaArrayConfig {
        &self.config
    }

    /// The per-via thermomechanical stresses, Pa.
    pub fn sigma_t(&self) -> &[f64] {
        &self.sigma_t
    }

    /// The reference (characterization) current density, A/m².
    pub fn current_density(&self) -> f64 {
        self.current_density
    }

    /// Full lifetime of one via at current density `j` given its sampled
    /// critical stress.
    fn via_life(&self, sigma_c: f64, sigma_t: f64, j: f64) -> f64 {
        let mut life = nucleation::nucleation_time(&self.tech, sigma_c, sigma_t, j);
        if let Some(g) = &self.growth {
            life += g.growth_time(&self.tech, j);
        }
        life
    }

    /// Runs one Monte Carlo trial.
    pub fn simulate_once<R: Rng + ?Sized>(&self, rng: &mut R) -> ViaArraySample {
        let n = self.config.count();
        let rows = self.config.geometry.rows;
        let cols = self.config.geometry.cols;
        let sc_dist = self.tech.critical_stress_distribution();
        let sigma_c: Vec<f64> = (0..n).map(|_| sc_dist.sample(rng)).collect();

        let total_current = self.current_density * self.config.effective_area_m2();
        let via_area = self.config.via_area_m2();
        let mut alive = vec![true; n];
        let currents = self
            .current_model
            .via_currents(rows, cols, &alive, total_current);
        let mut j: Vec<f64> = currents.iter().map(|i| i / via_area).collect();
        let mut remaining: Vec<f64> = (0..n)
            .map(|v| self.via_life(sigma_c[v], self.sigma_t[v], j[v]))
            .collect();

        let mut t = 0.0;
        let mut failure_times = Vec::with_capacity(n);
        for step in 0..n {
            // Earliest remaining failure among alive vias.
            let (victim, dt) = alive
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a)
                .map(|(v, _)| (v, remaining[v]))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite lifetimes"))
                .expect("alive vias remain");
            t += dt;
            failure_times.push(t);
            alive[victim] = false;
            if step + 1 == n {
                break;
            }
            // Elapse time on survivors, then rescale for the new currents.
            let currents = self
                .current_model
                .via_currents(rows, cols, &alive, total_current);
            for v in 0..n {
                if alive[v] {
                    let j_new = currents[v] / via_area;
                    let left = (remaining[v] - dt).max(0.0);
                    remaining[v] = nucleation::rescale_remaining_life(left, j[v], j_new);
                    j[v] = j_new;
                }
            }
        }
        ViaArraySample { failure_times }
    }

    /// Runs one variation-enabled trial.
    ///
    /// Critical-stress draws come from `void_rng`, the correlated
    /// temperature field from `field_rng`, and the correlated linewidth
    /// field from `geom_rng` — three independent sub-streams of the same
    /// `(seed, trial)` pair (see [`emgrid_stats::substream_rng`]), so
    /// enabling one variation source never shifts another's sequence.
    pub fn simulate_once_varied<R: Rng + ?Sized>(
        &self,
        var: &Variation,
        void_rng: &mut R,
        field_rng: &mut R,
        geom_rng: &mut R,
    ) -> ViaArraySample {
        let n = self.config.count();
        let rows = self.config.geometry.rows;
        let cols = self.config.geometry.cols;
        let sc_dist = self.tech.critical_stress_distribution();
        let sigma_c: Vec<f64> = (0..n).map(|_| sc_dist.sample(void_rng)).collect();

        // Per-trial fields: a hotter via lives shorter by the Arrhenius
        // factor; a narrower via sees a higher current density.
        let life_scale: Vec<f64> = if var.temperature_sigma_c > 0.0 {
            variation::correlated_field_2d(rows, cols, field_rng)
                .iter()
                .map(|&f| {
                    Variation::temperature_life_scale(&self.tech, var.temperature_sigma_c * f)
                })
                .collect()
        } else {
            vec![1.0; n]
        };
        let inv_width: Vec<f64> = if var.linewidth_sigma > 0.0 {
            variation::correlated_field_2d(rows, cols, geom_rng)
                .iter()
                .map(|&f| 1.0 / (1.0 + var.linewidth_sigma * f).max(variation::MIN_RELATIVE_WIDTH))
                .collect()
        } else {
            vec![1.0; n]
        };
        let weights = (var.edge_current_factor > 0.0).then(|| var.edge_weights(rows, cols));

        let total_current = self.current_density * self.config.effective_area_m2();
        let via_area = self.config.via_area_m2();
        let mut alive = vec![true; n];
        let currents =
            self.weighted_currents(rows, cols, &alive, total_current, weights.as_deref());
        let mut j: Vec<f64> = (0..n)
            .map(|v| currents[v] * inv_width[v] / via_area)
            .collect();
        let mut remaining: Vec<f64> = (0..n)
            .map(|v| self.via_life(sigma_c[v], self.sigma_t[v], j[v]) * life_scale[v])
            .collect();

        let mut t = 0.0;
        let mut failure_times = Vec::with_capacity(n);
        for step in 0..n {
            let (victim, dt) = alive
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a)
                .map(|(v, _)| (v, remaining[v]))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite lifetimes"))
                .expect("alive vias remain");
            t += dt;
            failure_times.push(t);
            alive[victim] = false;
            if step + 1 == n {
                break;
            }
            let currents =
                self.weighted_currents(rows, cols, &alive, total_current, weights.as_deref());
            for v in 0..n {
                if alive[v] {
                    let j_new = currents[v] * inv_width[v] / via_area;
                    let left = (remaining[v] - dt).max(0.0);
                    remaining[v] = nucleation::rescale_remaining_life(left, j[v], j_new);
                    j[v] = j_new;
                }
            }
        }
        ViaArraySample { failure_times }
    }

    /// Currents from the configured model, optionally reweighted by the
    /// static geometry-derived edge weights and renormalized so the total
    /// stays conserved.
    fn weighted_currents(
        &self,
        rows: usize,
        cols: usize,
        alive: &[bool],
        total_current: f64,
        weights: Option<&[f64]>,
    ) -> Vec<f64> {
        let mut currents = self
            .current_model
            .via_currents(rows, cols, alive, total_current);
        if let Some(w) = weights {
            let mut sum = 0.0;
            for (c, &wv) in currents.iter_mut().zip(w) {
                *c *= wv;
                sum += *c;
            }
            let scale = total_current / sum;
            for c in &mut currents {
                *c *= scale;
            }
        }
        currents
    }

    /// Runs the variation-enabled characterization twice with the same seed
    /// — once as configured, once with the correlated fields frozen — and
    /// returns the full result next to the random-walk variance
    /// decomposition of the open-circuit `ln TTF`.
    ///
    /// Void draws come from their own sub-stream, so the two runs share
    /// critical-stress samples trial for trial and the difference isolates
    /// the field contribution. With early termination the decomposition
    /// uses the common committed prefix.
    ///
    /// # Panics
    ///
    /// Panics if no variation is configured or fewer than two trials
    /// commit.
    pub fn characterize_with_variance(
        &self,
        trials: usize,
        seed: u64,
        runtime: &RuntimeConfig,
    ) -> (CharacterizationResult, VarianceDecomposition) {
        let var = self
            .variation
            .expect("variance analysis requires a configured variation");
        let varied = self.characterize_with(trials, seed, runtime);
        let mut frozen_mc = self.clone();
        frozen_mc.variation = Some(var.frozen_fields());
        let frozen = frozen_mc.characterize_with(trials, seed, runtime);
        let ln = |xs: Vec<f64>| -> Vec<f64> {
            xs.into_iter()
                .map(|x| x.max(f64::MIN_POSITIVE).ln())
                .collect()
        };
        let lv = ln(varied.ttf_samples(FailureCriterion::OpenCircuit));
        let lf = ln(frozen.ttf_samples(FailureCriterion::OpenCircuit));
        let common = lv.len().min(lf.len());
        let decomposition = VarianceDecomposition::from_ln_samples(&lv[..common], &lf[..common]);
        (varied, decomposition)
    }

    /// Runs `trials` trials with a deterministic seed and collects the
    /// results for criterion evaluation and lognormal fitting.
    ///
    /// Sequential, fixed-budget shorthand for [`ViaArrayMc::characterize_with`].
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn characterize(&self, trials: usize, seed: u64) -> CharacterizationResult {
        self.characterize_with(trials, seed, &RuntimeConfig::sequential())
    }

    /// Runs the characterization on the shared Monte Carlo runtime: trials
    /// are scheduled work-stealing across `runtime.threads`, each on its own
    /// RNG stream derived from `(seed, trial)`, so the samples are
    /// **bit-identical for any thread count**. With an early-stop policy the
    /// run halts once the confidence interval on the open-circuit `ln TTF`
    /// mean is tight enough; the [`emgrid_runtime::RunReport`] on the result
    /// records what actually ran.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn characterize_with(
        &self,
        trials: usize,
        seed: u64,
        runtime: &RuntimeConfig,
    ) -> CharacterizationResult {
        self.characterize_session(trials, seed, runtime, ViaSession::default())
            .expect("an uncancelled run commits at least one sample")
    }

    /// [`ViaArrayMc::characterize_with`] with checkpoint/resume/cancellation
    /// controls — the entry point the analysis daemon drives.
    ///
    /// A run resumed from a [`ViaCheckpoint`] produces the same result as an
    /// uninterrupted run with the same seed (every trial's randomness comes
    /// from `(seed, trial)` alone). Returns `None` only when a cancellation
    /// stopped the run before any sample was committed; a cancelled run
    /// that did commit samples returns them with `report().cancelled` set.
    ///
    /// # Panics
    ///
    /// As [`ViaArrayMc::characterize_with`], plus if the resume checkpoint
    /// is inconsistent with the trial budget or via count.
    pub fn characterize_session(
        &self,
        trials: usize,
        seed: u64,
        runtime: &RuntimeConfig,
        session: ViaSession<'_>,
    ) -> Option<CharacterizationResult> {
        let _span = emgrid_runtime::obs::span("via-mc");
        let open_circuit = self.config.count() - 1;
        let mut on_checkpoint = session.on_checkpoint;
        let mut adapter = |samples: &[ViaArraySample], stream: &emgrid_stats::OnlineStats| {
            if let Some(cb) = on_checkpoint.as_mut() {
                cb(&ViaCheckpoint {
                    samples: samples.to_vec(),
                    stream: *stream,
                });
            }
        };
        let trial_session = TrialSession {
            resume: session.resume.map(|cp| SessionState {
                outputs: cp.samples,
                stream: cp.stream,
            }),
            cancel: session.cancel,
            checkpoint_every: session.checkpoint_every,
            on_checkpoint: Some(&mut adapter),
        };
        enum Never {}
        let result: Result<_, Never> = emgrid_runtime::run_trials_session(
            trials,
            runtime,
            trial_session,
            |t| {
                Ok(match &self.variation {
                    Some(var) => {
                        let s = t as u64;
                        let mut void_rng =
                            emgrid_stats::substream_rng(seed, s, variation::CHANNEL_VOID);
                        let mut field_rng =
                            emgrid_stats::substream_rng(seed, s, variation::CHANNEL_FIELD);
                        let mut geom_rng =
                            emgrid_stats::substream_rng(seed, s, variation::CHANNEL_GEOMETRY);
                        self.simulate_once_varied(var, &mut void_rng, &mut field_rng, &mut geom_rng)
                    }
                    None => {
                        let mut rng = emgrid_stats::stream_rng(seed, t as u64);
                        self.simulate_once(&mut rng)
                    }
                })
            },
            |s: &ViaArraySample| s.failure_times[open_circuit].max(f64::MIN_POSITIVE).ln(),
        );
        let (samples, report) = match result {
            Ok(pair) => pair,
            Err(never) => match never {},
        };
        if samples.is_empty() {
            return None;
        }
        Some(CharacterizationResult::with_report(
            self.config,
            self.current_density,
            samples,
            report,
        ))
    }
}

/// Checkpoint/resume/cancellation controls for one
/// [`ViaArrayMc::characterize_session`] call; the default is a plain fresh
/// run.
#[derive(Default)]
pub struct ViaSession<'a> {
    /// Checkpoint to resume from (`None` = start at trial zero).
    pub resume: Option<ViaCheckpoint>,
    /// Cooperative cancellation token, polled between trials.
    pub cancel: Option<&'a CancelToken>,
    /// Trials between checkpoint callbacks; 0 disables periodic
    /// checkpointing (a final checkpoint still fires on cancellation).
    pub checkpoint_every: usize,
    /// Receives a snapshot of the committed state at each checkpoint.
    #[allow(clippy::type_complexity)]
    pub on_checkpoint: Option<&'a mut (dyn FnMut(&ViaCheckpoint) + 'a)>,
}

/// Convenience: the default layer pair used throughout the experiments.
pub const DEFAULT_LAYER_PAIR: LayerPair = LayerPair::IntermediateTop;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::FailureCriterion;
    use emgrid_em::SECONDS_PER_YEAR;
    use emgrid_fea::geometry::IntersectionPattern;
    use emgrid_stats::seeded_rng;

    fn paper_mc(pattern: IntersectionPattern) -> ViaArrayMc {
        ViaArrayMc::from_reference_table(
            &ViaArrayConfig::paper_4x4(pattern),
            Technology::default(),
            1e10,
        )
    }

    #[test]
    fn failure_times_are_sorted_and_positive() {
        let mc = paper_mc(IntersectionPattern::Plus);
        let mut rng = seeded_rng(1);
        let s = mc.simulate_once(&mut rng);
        assert_eq!(s.failure_times.len(), 16);
        assert!(s.failure_times[0] > 0.0);
        for w in s.failure_times.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn first_failures_land_in_single_digit_years() {
        // Fig. 8(a): the 1st-via CDF is centered around a few years.
        let mc = paper_mc(IntersectionPattern::Plus);
        let result = mc.characterize(300, 7);
        let med = result.ecdf(FailureCriterion::WeakestLink).median() / SECONDS_PER_YEAR;
        assert!(med > 0.5 && med < 12.0, "median first failure {med} yr");
    }

    #[test]
    fn later_criteria_fail_later() {
        let mc = paper_mc(IntersectionPattern::Plus);
        let mut rng = seeded_rng(3);
        let s = mc.simulate_once(&mut rng);
        assert!(s.time_of_failure(8) > s.time_of_failure(1));
        assert!(s.time_of_failure(16) > s.time_of_failure(8));
    }

    #[test]
    fn current_acceleration_compresses_the_tail() {
        // With redistribution, the gap between the 15th and 16th failure is
        // driven by a 16x current: the last via's residual life shrinks by
        // ~256x vs its original scale. Check the total spread is far less
        // than 16 independent lifetimes would suggest.
        let mc = paper_mc(IntersectionPattern::Plus);
        let mut rng = seeded_rng(5);
        let s = mc.simulate_once(&mut rng);
        let first = s.time_of_failure(1);
        let last = s.time_of_failure(16);
        assert!(last < 20.0 * first, "first {first}, last {last}");
    }

    #[test]
    fn ell_pattern_outlives_plus() {
        // Fig. 8(b): lower σ_T in the L pattern → longer TTF.
        let plus = paper_mc(IntersectionPattern::Plus).characterize(200, 11);
        let ell = paper_mc(IntersectionPattern::Ell).characterize(200, 11);
        let c = FailureCriterion::ViaCount(8);
        assert!(ell.ecdf(c).median() > plus.ecdf(c).median());
    }

    #[test]
    fn higher_current_shortens_life() {
        let config = ViaArrayConfig::paper_4x4(IntersectionPattern::Plus);
        let tech = Technology::default();
        let lo = ViaArrayMc::from_reference_table(&config, tech, 1e10).characterize(100, 13);
        let hi = ViaArrayMc::from_reference_table(&config, tech, 2e10).characterize(100, 13);
        let c = FailureCriterion::ViaCount(8);
        // TTF ∝ 1/j²: doubling current should quarter the median.
        let ratio = lo.ecdf(c).median() / hi.ecdf(c).median();
        assert!((ratio - 4.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn network_model_changes_failure_order_statistics() {
        // With crowding, perimeter vias die sooner; the first-failure time
        // drops relative to the uniform model (same seed).
        let config = ViaArrayConfig::paper_4x4(IntersectionPattern::Plus);
        let tech = Technology::default();
        let uniform = ViaArrayMc::from_reference_table(&config, tech, 1e10)
            .characterize(150, 17)
            .ecdf(FailureCriterion::WeakestLink)
            .median();
        let crowded = ViaArrayMc::from_reference_table(&config, tech, 1e10)
            .with_current_model(CurrentModel::Network(Default::default()))
            .characterize(150, 17)
            .ecdf(FailureCriterion::WeakestLink)
            .median();
        assert!(
            crowded < uniform,
            "crowded {crowded} should be below uniform {uniform}"
        );
    }

    #[test]
    fn growth_stage_adds_time() {
        let config = ViaArrayConfig::paper_4x4(IntersectionPattern::Plus);
        let tech = Technology::default();
        let bare = ViaArrayMc::from_reference_table(&config, tech, 1e10)
            .characterize(100, 19)
            .ecdf(FailureCriterion::OpenCircuit)
            .median();
        let with_growth = ViaArrayMc::from_reference_table(&config, tech, 1e10)
            .with_growth(GrowthModel::slit())
            .characterize(100, 19)
            .ecdf(FailureCriterion::OpenCircuit)
            .median();
        assert!(with_growth > bare);
    }

    #[test]
    fn session_resume_and_cancel_match_uninterrupted_run() {
        let mc = paper_mc(IntersectionPattern::Plus);
        let whole = mc.characterize(60, 29);

        // Cancel from the first checkpoint, then resume from its state.
        let token = CancelToken::new();
        let mut last: Option<ViaCheckpoint> = None;
        let mut on_checkpoint = |cp: &ViaCheckpoint| {
            last = Some(cp.clone());
            token.cancel();
        };
        let cancelled = mc
            .characterize_session(
                60,
                29,
                &RuntimeConfig::sequential(),
                ViaSession {
                    cancel: Some(&token),
                    checkpoint_every: 16,
                    on_checkpoint: Some(&mut on_checkpoint),
                    ..ViaSession::default()
                },
            )
            .expect("samples were committed before the cancel");
        assert!(cancelled.report().cancelled);

        let cp = ViaCheckpoint::decode(&last.expect("checkpoint fired").encode()).unwrap();
        assert_eq!(cp.samples.len(), 16);
        let resumed = mc
            .characterize_session(
                60,
                29,
                &RuntimeConfig::threaded(2),
                ViaSession {
                    resume: Some(cp),
                    ..ViaSession::default()
                },
            )
            .unwrap();
        assert!(!resumed.report().cancelled);
        assert_eq!(resumed.report().resumed_from, 16);
        assert_eq!(
            resumed.ttf_samples(FailureCriterion::OpenCircuit),
            whole.ttf_samples(FailureCriterion::OpenCircuit)
        );

        // A token tripped before any trial commits nothing.
        let token = CancelToken::new();
        token.cancel();
        assert!(mc
            .characterize_session(
                60,
                29,
                &RuntimeConfig::sequential(),
                ViaSession {
                    cancel: Some(&token),
                    ..ViaSession::default()
                },
            )
            .is_none());
    }

    #[test]
    fn edge_loaded_arrays_fail_earlier() {
        // Geometry-derived uneven current: edge/corner vias carry more, so
        // the earliest failure moves forward relative to the uniform split
        // (the 1801.08281 direction). Same trial budget, same seed.
        let uniform = paper_mc(IntersectionPattern::Plus)
            .with_variation(Variation::default())
            .characterize(200, 31)
            .ecdf(FailureCriterion::WeakestLink)
            .median();
        let edge_loaded = paper_mc(IntersectionPattern::Plus)
            .with_variation(Variation {
                edge_current_factor: 0.5,
                ..Variation::default()
            })
            .characterize(200, 31)
            .ecdf(FailureCriterion::WeakestLink)
            .median();
        assert!(
            edge_loaded < uniform,
            "edge-loaded {edge_loaded} should be below uniform {uniform}"
        );
    }

    #[test]
    fn edge_weighting_conserves_total_current() {
        let mc = paper_mc(IntersectionPattern::Plus).with_variation(Variation {
            edge_current_factor: 1.0,
            ..Variation::default()
        });
        let total = mc.current_density() * mc.config().effective_area_m2();
        let weights = mc.variation().unwrap().edge_weights(4, 4);
        let currents = mc.weighted_currents(4, 4, &[true; 16], total, Some(&weights));
        let sum: f64 = currents.iter().sum();
        assert!((sum - total).abs() / total < 1e-12);
        // Corner beats edge beats interior.
        assert!(currents[0] > currents[1] && currents[1] > currents[5]);
    }

    #[test]
    fn variation_sources_draw_from_independent_substreams() {
        // Freezing the fields must not change the void draws: with the
        // same seed, the frozen run and the field-enabled run differ only
        // through the fields themselves.
        let base = paper_mc(IntersectionPattern::Plus);
        let frozen_a = base
            .clone()
            .with_variation(Variation::default())
            .characterize(50, 37);
        let frozen_b = base
            .clone()
            .with_variation(
                Variation {
                    temperature_sigma_c: 10.0,
                    linewidth_sigma: 0.08,
                    ..Variation::default()
                }
                .frozen_fields(),
            )
            .characterize(50, 37);
        assert_eq!(
            frozen_a.ttf_samples(FailureCriterion::OpenCircuit),
            frozen_b.ttf_samples(FailureCriterion::OpenCircuit)
        );
    }

    #[test]
    fn variance_decomposition_attributes_field_variance() {
        let mc = paper_mc(IntersectionPattern::Plus).with_variation(Variation {
            temperature_sigma_c: 10.0,
            linewidth_sigma: 0.05,
            ..Variation::default()
        });
        let (result, d) = mc.characterize_with_variance(120, 41, &RuntimeConfig::sequential());
        assert_eq!(result.ttf_samples(FailureCriterion::OpenCircuit).len(), 120);
        assert!(d.total > d.void, "total {} void {}", d.total, d.void);
        assert!(d.environment > 0.0);
        assert!((d.environment - (d.total - d.void)).abs() < 1e-12);

        // Without fields the decomposition collapses onto the void term.
        let bare = paper_mc(IntersectionPattern::Plus).with_variation(Variation::default());
        let (_, d0) = bare.characterize_with_variance(80, 41, &RuntimeConfig::sequential());
        assert_eq!(d0.environment, 0.0);
        assert_eq!(d0.total, d0.void);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let mc = paper_mc(IntersectionPattern::Plus);
        let a = mc.characterize(50, 23);
        let b = mc.characterize(50, 23);
        assert_eq!(
            a.ttf_samples(FailureCriterion::OpenCircuit),
            b.ttf_samples(FailureCriterion::OpenCircuit)
        );
    }
}
