//! Closed-form via-array TTF distributions.
//!
//! Because the critical stress `σ_C` is **exactly** lognormal (Eq. 4 with a
//! lognormal flaw radius), the nucleation time of a via with deterministic
//! thermomechanical stress `σ_T` has an exact closed-form CDF:
//!
//! `F(t) = P(C·(σ_C − σ_T)² ≤ t) = F_{σ_C}(σ_T + √(t/C))`,
//!
//! captured by [`ViaTtf`]. The first-failure (weakest-link) distribution of
//! an array is then the exact product form `1 − Π(1 − F_i(t))`
//! ([`WeakestLink`]). These formulas cross-validate the Monte Carlo — and
//! [`per_via_ttf_lognormal`] implements the paper's Wilkinson-style
//! *lognormal approximation* of the same distribution so its quality can be
//! quantified.

use emgrid_em::{nucleation, Technology};
use emgrid_stats::wilkinson::shifted_lognormal;
use emgrid_stats::{InvalidParameterError, LogNormal};

/// Exact nucleation-time distribution of a single via.
///
/// # Example
///
/// ```
/// use emgrid_via::analytic::ViaTtf;
/// use emgrid_em::Technology;
///
/// let via = ViaTtf::new(&Technology::default(), 240e6, 1e10);
/// let median = via.median();
/// assert!((via.cdf(median) - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViaTtf {
    sigma_c: LogNormal,
    sigma_t: f64,
    /// `C_tn / D_eff` (s/Pa²): `t = scale · margin²`.
    scale: f64,
}

impl ViaTtf {
    /// Builds the distribution for a via with thermomechanical stress
    /// `sigma_t` (Pa) at current density `j` (A/m²).
    ///
    /// # Panics
    ///
    /// Panics if `j <= 0` (propagated from the nucleation constant).
    pub fn new(tech: &Technology, sigma_t: f64, j: f64) -> Self {
        ViaTtf {
            sigma_c: tech.critical_stress_distribution(),
            sigma_t: sigma_t + tech.package_stress,
            scale: nucleation::nucleation_constant(tech, j) / nucleation::diffusivity(tech),
        }
    }

    /// CDF at time `t` (seconds). `F(0)` is the probability that the
    /// critical stress is already below the preexisting stress.
    pub fn cdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        self.sigma_c.cdf(self.sigma_t + (t / self.scale).sqrt())
    }

    /// Exact quantile: `t_p = scale · max(q_{σ_C}(p) − σ_T, 0)²`.
    pub fn quantile(&self, p: f64) -> f64 {
        let margin = (self.sigma_c.quantile(p) - self.sigma_t).max(0.0);
        self.scale * margin * margin
    }

    /// Median nucleation time.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

/// Lognormal approximation of one via's nucleation time — the paper's
/// Wilkinson-approximation argument, made concrete: the margin
/// `σ_C − σ_T` is moment-matched to a lognormal, then squared and scaled
/// (both exact operations on lognormals).
///
/// # Errors
///
/// Returns [`InvalidParameterError`] if `sigma_t` exceeds the mean critical
/// stress (the margin distribution would not be positive).
pub fn per_via_ttf_lognormal(
    tech: &Technology,
    sigma_t: f64,
    j: f64,
) -> Result<LogNormal, InvalidParameterError> {
    let sigma_c = tech.critical_stress_distribution();
    let margin = shifted_lognormal(&sigma_c, sigma_t + tech.package_stress)?;
    let scale = nucleation::nucleation_constant(tech, j) / nucleation::diffusivity(tech);
    margin.powered(2.0)?.scaled(scale)
}

/// The exact first-failure (weakest-link) distribution of independent vias.
#[derive(Debug, Clone)]
pub struct WeakestLink {
    components: Vec<ViaTtf>,
}

impl WeakestLink {
    /// Builds the distribution from per-component lifetimes.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty.
    pub fn new(components: Vec<ViaTtf>) -> Self {
        assert!(!components.is_empty(), "need at least one component");
        WeakestLink { components }
    }

    /// Analytic weakest-link model of a via array from its per-via stress
    /// vector, with every via carrying current density `j_per_via`.
    pub fn for_array(tech: &Technology, sigma_t: &[f64], j_per_via: f64) -> Self {
        WeakestLink::new(
            sigma_t
                .iter()
                .map(|&s| ViaTtf::new(tech, s, j_per_via))
                .collect(),
        )
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the set is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// CDF of the minimum lifetime at time `t` (seconds).
    pub fn cdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        let survive: f64 = self
            .components
            .iter()
            .map(|c| (1.0 - c.cdf(t)).max(0.0))
            .product();
        1.0 - survive
    }

    /// Quantile of the minimum lifetime by bisection.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
        let mut lo = 0.0f64;
        let mut hi = self
            .components
            .iter()
            .map(|c| c.quantile(p))
            .fold(f64::INFINITY, f64::min)
            .max(1.0);
        while self.cdf(hi) < p {
            hi *= 2.0;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Median of the minimum lifetime.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{FailureCriterion, ViaArrayConfig};
    use crate::mc::ViaArrayMc;
    use emgrid_em::SECONDS_PER_YEAR;
    use emgrid_fea::geometry::IntersectionPattern;
    use emgrid_stats::{ks_statistic, seeded_rng, Ecdf};

    #[test]
    fn exact_cdf_matches_direct_sampling() {
        // Sample σ_C, compute nucleation times, compare ECDF to ViaTtf.
        let tech = Technology::default();
        let via = ViaTtf::new(&tech, 240e6, 1e10);
        let sc = tech.critical_stress_distribution();
        let mut rng = seeded_rng(8);
        let samples: Vec<f64> = (0..4000)
            .map(|_| nucleation::nucleation_time(&tech, sc.sample(&mut rng), 240e6, 1e10))
            .collect();
        let ecdf = Ecdf::new(samples);
        let d = ks_statistic(&ecdf, |t| via.cdf(t));
        assert!(d < 0.03, "KS distance {d}");
    }

    #[test]
    fn exact_quantile_inverts_cdf() {
        let tech = Technology::default();
        let via = ViaTtf::new(&tech, 250e6, 1e10);
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            let t = via.quantile(p);
            assert!((via.cdf(t) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn lognormal_approximation_is_close_but_not_exact() {
        // Quantify the paper's Wilkinson-style approximation: the KS gap to
        // the exact distribution is small but measurable.
        let tech = Technology::default();
        let exact = ViaTtf::new(&tech, 240e6, 1e10);
        let approx = per_via_ttf_lognormal(&tech, 240e6, 1e10).unwrap();
        let mut worst: f64 = 0.0;
        for i in 1..200 {
            let t = exact.quantile(i as f64 / 200.0);
            worst = worst.max((exact.cdf(t) - approx.cdf(t)).abs());
        }
        assert!(worst < 0.10, "sup gap {worst}");
        assert!(worst > 1e-4, "approximation should not be exact");
        // Medians agree well.
        assert!((approx.median() - exact.median()).abs() / exact.median() < 0.10);
    }

    #[test]
    fn lognormal_approximation_rejects_overwhelming_stress() {
        let tech = Technology::default();
        assert!(per_via_ttf_lognormal(&tech, 400e6, 1e10).is_err());
    }

    #[test]
    fn weakest_link_below_every_component() {
        let tech = Technology::default();
        let wl = WeakestLink::for_array(&tech, &[240e6, 250e6, 260e6], 1e10);
        let m = wl.median();
        for c in &wl.components {
            assert!(m < c.median());
        }
    }

    #[test]
    fn analytic_matches_monte_carlo_first_failure() {
        // Cross-validation: the simulated first-failure ECDF of a 4x4 array
        // (uniform current; no redistribution happens before the first
        // failure) must agree with the exact weakest-link CDF.
        let tech = Technology::default();
        let config = ViaArrayConfig::paper_4x4(IntersectionPattern::Plus);
        let mc = ViaArrayMc::from_reference_table(&config, tech, 1e10);
        let result = mc.characterize(3000, 55);
        let ecdf = Ecdf::new(result.ttf_samples(FailureCriterion::WeakestLink));
        let analytic = WeakestLink::for_array(&tech, mc.sigma_t(), 1e10);
        let d = ks_statistic(&ecdf, |t| analytic.cdf(t));
        assert!(
            d < emgrid_stats::ks::ks_critical_value(3000, 0.01) * 1.5,
            "KS distance {d}"
        );
        let med_mc = ecdf.median();
        let med_an = analytic.median();
        assert!(
            (med_mc - med_an).abs() / med_an < 0.05,
            "MC {} vs analytic {}",
            med_mc / SECONDS_PER_YEAR,
            med_an / SECONDS_PER_YEAR
        );
    }

    #[test]
    fn quantile_inverts_cdf_for_arrays() {
        let tech = Technology::default();
        let wl = WeakestLink::for_array(&tech, &[240e6; 16], 1e10);
        for &p in &[0.01, 0.25, 0.5, 0.9] {
            let t = wl.quantile(p);
            assert!((wl.cdf(t) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn more_components_fail_sooner() {
        let tech = Technology::default();
        let w4 = WeakestLink::for_array(&tech, &[240e6; 4], 1e10);
        let w64 = WeakestLink::for_array(&tech, &[240e6; 64], 1e10);
        assert!(w64.median() < w4.median());
    }
}
