//! Precharacterized thermomechanical stress tables (paper §3.2).
//!
//! The paper avoids running FEA on a full power grid by characterizing a
//! small set of primitives once per technology: 3 layer pairs × 3 patterns ×
//! the via configurations × a few wire widths, interpolating across width.
//! This module provides that table abstraction with two sources:
//!
//! * [`StressTable::reference`] — a bundled table calibrated to the stress
//!   levels the paper reports (Figs. 1, 6, 7: ~270 MPa peaks at array
//!   perimeters, interior vias shielded by ~30–60 MPa, Plus > T > L),
//!   making downstream experiments deterministic and fast;
//! * [`StressTable::characterize_with_fea`] — regenerates entries with the
//!   [`emgrid_fea`] engine, demonstrating the full characterization flow.

use std::time::{Duration, Instant};

use emgrid_fea::geometry::{CharacterizationModel, IntersectionPattern, ViaArrayGeometry};
use emgrid_fea::model::{FeaError, SolveMethod, ThermalStressAnalysis};
use emgrid_sparse::{KernelBackend, Ordering};

use crate::cache::{CacheEntry, StressCache};

/// Which metal layers the via array connects (paper §3.2: intermediate and
/// top layers cover the thick-wire levels where via arrays appear).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerPair {
    /// Both layers intermediate.
    IntermediateIntermediate,
    /// Lower intermediate, upper top.
    IntermediateTop,
    /// Both layers top.
    TopTop,
}

impl LayerPair {
    /// All pairs, in the paper's enumeration order.
    pub const ALL: [LayerPair; 3] = [
        LayerPair::IntermediateIntermediate,
        LayerPair::IntermediateTop,
        LayerPair::TopTop,
    ];

    /// Relative stress scale of this pair in the reference table. Thicker
    /// top-layer metal relieves slightly more stress into the overburden.
    fn reference_scale(self) -> f64 {
        match self {
            LayerPair::IntermediateIntermediate => 1.0,
            LayerPair::IntermediateTop => 0.97,
            LayerPair::TopTop => 0.93,
        }
    }
}

impl std::fmt::Display for LayerPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LayerPair::IntermediateIntermediate => "intermediate-intermediate",
            LayerPair::IntermediateTop => "intermediate-top",
            LayerPair::TopTop => "top-top",
        };
        f.write_str(s)
    }
}

/// One characterized primitive: per-via peak tensile `σ_T` (Pa, row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct StressEntry {
    /// Connected layer pair.
    pub layer_pair: LayerPair,
    /// Intersection pattern.
    pub pattern: IntersectionPattern,
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Wire width, µm.
    pub wire_width: f64,
    /// Peak tensile hydrostatic stress beneath each via, Pa, row-major.
    pub per_via_stress: Vec<f64>,
}

/// A collection of characterized primitives with width interpolation.
#[derive(Debug, Clone, Default)]
pub struct StressTable {
    entries: Vec<StressEntry>,
}

impl StressTable {
    /// An empty table.
    pub fn new() -> Self {
        StressTable::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds an entry.
    ///
    /// # Panics
    ///
    /// Panics if the stress vector length disagrees with `rows × cols`.
    pub fn insert(&mut self, entry: StressEntry) {
        assert_eq!(
            entry.per_via_stress.len(),
            entry.rows * entry.cols,
            "stress vector must have rows*cols entries"
        );
        self.entries.push(entry);
    }

    /// The entries.
    pub fn entries(&self) -> &[StressEntry] {
        &self.entries
    }

    /// Looks up per-via stresses, interpolating linearly in wire width
    /// between the nearest characterized widths (and clamping outside the
    /// characterized range, per the paper's `w_n = 3` interpolation scheme).
    ///
    /// Returns `None` if no entry matches the (layer pair, pattern, rows,
    /// cols) key at any width.
    pub fn lookup(
        &self,
        layer_pair: LayerPair,
        pattern: IntersectionPattern,
        rows: usize,
        cols: usize,
        wire_width: f64,
    ) -> Option<Vec<f64>> {
        let mut matches: Vec<&StressEntry> = self
            .entries
            .iter()
            .filter(|e| {
                e.layer_pair == layer_pair
                    && e.pattern == pattern
                    && e.rows == rows
                    && e.cols == cols
            })
            .collect();
        if matches.is_empty() {
            return None;
        }
        matches.sort_by(|a, b| {
            a.wire_width
                .partial_cmp(&b.wire_width)
                .expect("finite widths")
        });
        // Exact or clamped endpoints.
        if wire_width <= matches[0].wire_width {
            return Some(matches[0].per_via_stress.clone());
        }
        if wire_width >= matches[matches.len() - 1].wire_width {
            return Some(matches[matches.len() - 1].per_via_stress.clone());
        }
        // Bracketing pair.
        let hi = matches
            .iter()
            .position(|e| e.wire_width >= wire_width)
            .expect("bracketed above");
        let (a, b) = (matches[hi - 1], matches[hi]);
        if (b.wire_width - a.wire_width).abs() < 1e-12 {
            return Some(a.per_via_stress.clone());
        }
        let t = (wire_width - a.wire_width) / (b.wire_width - a.wire_width);
        Some(
            a.per_via_stress
                .iter()
                .zip(&b.per_via_stress)
                .map(|(x, y)| x + t * (y - x))
                .collect(),
        )
    }

    /// The bundled reference table: the paper's three patterns, the 1×1 /
    /// 4×4 / 8×8 configurations, all three layer pairs, at wire widths
    /// 1.5 / 2.0 / 3.0 µm.
    pub fn reference() -> Self {
        let mut table = StressTable::new();
        for pair in LayerPair::ALL {
            for pattern in IntersectionPattern::ALL {
                for geom in [
                    ViaArrayGeometry::paper_1x1(),
                    ViaArrayGeometry::paper_4x4(),
                    ViaArrayGeometry::paper_8x8(),
                ] {
                    for width in [1.5, 2.0, 3.0] {
                        table.insert(StressEntry {
                            layer_pair: pair,
                            pattern,
                            rows: geom.rows,
                            cols: geom.cols,
                            wire_width: width,
                            per_via_stress: reference_per_via_stress(
                                pair, pattern, geom.rows, geom.cols, width,
                            ),
                        });
                    }
                }
            }
        }
        table
    }

    /// Builds a table by running the finite-element engine on each model.
    ///
    /// Equivalent to [`characterize_with_fea_opts`] with the default
    /// options (one thread, no cache); the report is discarded.
    ///
    /// # Errors
    ///
    /// Propagates [`FeaError`] from any failed analysis.
    ///
    /// [`characterize_with_fea_opts`]: StressTable::characterize_with_fea_opts
    pub fn characterize_with_fea(
        models: &[(CharacterizationModel, LayerPair)],
    ) -> Result<Self, FeaError> {
        Self::characterize_with_fea_opts(models, &FeaOptions::default()).map(|(t, _)| t)
    }

    /// Builds a table by running the finite-element engine on each model,
    /// fanning independent primitives out across threads and consulting
    /// the persistent cache, with per-primitive telemetry.
    ///
    /// **Work layout.** With `t = opts.threads` and `m` pending solves,
    /// `min(t, m)` primitives solve concurrently and each solve gets
    /// `max(1, t / min(t, m))` kernel threads — saturating the budget when
    /// primitives are plentiful and handing all threads to the kernels when
    /// a single large solve remains. Both levels run the fixed-chunk
    /// deterministic arithmetic of `emgrid_runtime::par`, so the table is
    /// **bit-identical for any thread count**.
    ///
    /// **Deduplication.** The elastic solve does not depend on the
    /// [`LayerPair`], so models identical up to layer pair share one solve
    /// (and one cache entry); the twins are reported with
    /// `solver = "dedup"`.
    ///
    /// # Errors
    ///
    /// Propagates [`FeaError`] from a failed analysis; with several
    /// failures the lowest model index wins, for any thread count.
    pub fn characterize_with_fea_opts(
        models: &[(CharacterizationModel, LayerPair)],
        opts: &FeaOptions,
    ) -> Result<(Self, FeaReport), FeaError> {
        let start = Instant::now();
        let _span = emgrid_runtime::obs::span("characterize");
        // One solve per distinct cache key; later duplicates borrow it.
        let keys: Vec<u64> = models
            .iter()
            .map(|(m, _)| StressCache::key(m, &opts.method, opts.ordering))
            .collect();
        let mut solve_for: Vec<usize> = Vec::new(); // model index of each unique solve
        let mut unique_of: Vec<usize> = Vec::with_capacity(models.len());
        for (i, key) in keys.iter().enumerate() {
            match keys[..i].iter().position(|k| k == key) {
                Some(prev) => unique_of.push(unique_of[prev]),
                None => {
                    unique_of.push(solve_for.len());
                    solve_for.push(i);
                }
            }
        }

        let outer = opts.threads.max(1).min(solve_for.len().max(1));
        let inner = (opts.threads.max(1) / outer).max(1);
        type Solved = (Vec<f64>, FeaPrimitiveReport);
        let solved: Vec<Result<Solved, FeaError>> =
            emgrid_runtime::parallel_map_chunks(solve_for.len(), 1, outer, |_, range| {
                let idx = solve_for[range.start];
                let (model, _) = &models[idx];
                let key = keys[idx];
                let t0 = Instant::now();
                if let Some(cache) = &opts.cache {
                    if let Some(entry) = cache.load(key) {
                        if entry.per_via_stress.len() == model.array.rows * model.array.cols {
                            let report = FeaPrimitiveReport {
                                model_index: idx,
                                cache_hit: true,
                                solver: "cache",
                                unknowns: 0,
                                iterations: 0,
                                residual: 0.0,
                                wall: t0.elapsed(),
                            };
                            return Ok((entry.per_via_stress, report));
                        }
                    }
                }
                let (field, stats) = ThermalStressAnalysis::new(*model)
                    .with_method(opts.method)
                    .with_ordering(opts.ordering)
                    .with_kernels(opts.kernels)
                    .with_threads(inner)
                    .run_with_stats()?;
                let per_via = field.per_via_peak_stress();
                if let Some(cache) = &opts.cache {
                    // Best-effort: a failed store only means a cold cache.
                    let _ = cache.store(
                        key,
                        &CacheEntry {
                            per_via_stress: per_via.clone(),
                            displacements: field.displacements().to_vec(),
                        },
                    );
                }
                let report = FeaPrimitiveReport {
                    model_index: idx,
                    cache_hit: false,
                    solver: stats.solver,
                    unknowns: stats.unknowns,
                    iterations: stats.iterations,
                    residual: stats.residual,
                    wall: t0.elapsed(),
                };
                Ok((per_via, report))
            });
        // Chunk order == model order, so the first error seen here is the
        // lowest-index failure regardless of scheduling.
        let mut unique: Vec<Solved> = Vec::with_capacity(solved.len());
        for r in solved {
            unique.push(r?);
        }

        let mut table = StressTable::new();
        let mut primitives = Vec::with_capacity(models.len());
        for (i, (model, pair)) in models.iter().enumerate() {
            let (per_via, report) = &unique[unique_of[i]];
            table.insert(StressEntry {
                layer_pair: *pair,
                pattern: model.pattern,
                rows: model.array.rows,
                cols: model.array.cols,
                wire_width: model.wire_width,
                per_via_stress: per_via.clone(),
            });
            let mut report = report.clone();
            if report.model_index != i {
                report = FeaPrimitiveReport {
                    model_index: i,
                    cache_hit: false,
                    solver: "dedup",
                    unknowns: 0,
                    iterations: 0,
                    residual: 0.0,
                    wall: Duration::ZERO,
                };
            }
            primitives.push(report);
        }
        let report = FeaReport {
            total_time: start.elapsed(),
            cache_hits: primitives.iter().filter(|p| p.cache_hit).count(),
            primitives,
        };
        Ok((table, report))
    }
}

/// Options for [`StressTable::characterize_with_fea_opts`].
#[derive(Debug, Clone, Default)]
pub struct FeaOptions {
    /// Total worker-thread budget, split between concurrent primitives and
    /// each solve's kernels (0 is treated as 1).
    pub threads: usize,
    /// Solver selection forwarded to every analysis.
    pub method: SolveMethod,
    /// Fill-reducing ordering for the direct solver (default AMD).
    pub ordering: Ordering,
    /// Dense-panel microkernel backend for the solver hot loops. Backends
    /// are bit-identical, so this is deliberately **not** part of the
    /// stress-cache key: entries written under one backend are valid hits
    /// under any other.
    pub kernels: KernelBackend,
    /// Persistent cache to consult and populate; `None` solves everything.
    pub cache: Option<StressCache>,
}

/// Telemetry for one characterized primitive.
#[derive(Debug, Clone, PartialEq)]
pub struct FeaPrimitiveReport {
    /// Index into the `models` slice.
    pub model_index: usize,
    /// Whether the result came from the persistent cache.
    pub cache_hit: bool,
    /// `"direct-ldl"`, `"cg-ic0"`, `"cache"`, or `"dedup"` (shared the
    /// solve of an earlier model identical up to layer pair).
    pub solver: &'static str,
    /// Free unknowns of the solve (0 for cache/dedup).
    pub unknowns: usize,
    /// CG iterations (0 for direct/cache/dedup).
    pub iterations: usize,
    /// Final relative CG residual (0 for direct/cache/dedup).
    pub residual: f64,
    /// Wall time spent on this primitive.
    pub wall: Duration,
}

/// Telemetry from one [`StressTable::characterize_with_fea_opts`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct FeaReport {
    /// Per-primitive telemetry, in `models` order.
    pub primitives: Vec<FeaPrimitiveReport>,
    /// End-to-end wall time.
    pub total_time: Duration,
    /// Primitives served from the persistent cache.
    pub cache_hits: usize,
}

/// The calibrated reference stress model (Pa, row-major).
///
/// Encodes the paper's observations as a compact analytic surrogate:
///
/// * perimeter vias of every configuration see a similar peak (~270 MPa at
///   a 2 µm Plus intersection — Figs. 1 and 7),
/// * interior vias are shielded, more deeply the further they sit from the
///   perimeter (Fig. 7's 8×8 interior ≈ 210–240 MPa),
/// * T- and L-patterns see ~8% / ~15% less stress than Plus (Fig. 6),
/// * wider wires confine the copper slightly more.
pub fn reference_per_via_stress(
    layer_pair: LayerPair,
    pattern: IntersectionPattern,
    rows: usize,
    cols: usize,
    wire_width: f64,
) -> Vec<f64> {
    assert!(rows > 0 && cols > 0, "array must have vias");
    let pattern_scale = match pattern {
        IntersectionPattern::Plus => 1.0,
        IntersectionPattern::Tee => 0.92,
        IntersectionPattern::Ell => 0.85,
    };
    // Mild width effect around the 2 µm baseline, clamped to ±10%.
    let width_scale = (1.0 + 0.025 * (wire_width - 2.0)).clamp(0.9, 1.1);
    let peak = if rows == 1 && cols == 1 { 275e6 } else { 270e6 };
    let base = peak * pattern_scale * width_scale * layer_pair.reference_scale();
    // Shielding by ring depth from the array perimeter.
    const RING_SCALE: [f64; 4] = [1.0, 0.885, 0.815, 0.775];
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let ring = r.min(rows - 1 - r).min(c.min(cols - 1 - c));
            let scale = RING_SCALE[ring.min(RING_SCALE.len() - 1)];
            out.push(base * scale);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_table_is_fully_populated() {
        let t = StressTable::reference();
        // 3 pairs × 3 patterns × 3 configs × 3 widths.
        assert_eq!(t.len(), 81);
        for pair in LayerPair::ALL {
            for pattern in IntersectionPattern::ALL {
                for (r, c) in [(1, 1), (4, 4), (8, 8)] {
                    assert!(t.lookup(pair, pattern, r, c, 2.0).is_some());
                }
            }
        }
    }

    #[test]
    fn perimeter_exceeds_interior_stress() {
        let s = reference_per_via_stress(
            LayerPair::IntermediateTop,
            IntersectionPattern::Plus,
            4,
            4,
            2.0,
        );
        // Corner (index 0) > interior (index 5).
        assert!(s[0] > s[5]);
        // All perimeter vias equal by symmetry of the surrogate.
        assert_eq!(s[0], s[3]);
        assert_eq!(s[0], s[12]);
    }

    #[test]
    fn deeper_interior_is_more_shielded_in_8x8() {
        let s = reference_per_via_stress(
            LayerPair::IntermediateTop,
            IntersectionPattern::Plus,
            8,
            8,
            2.0,
        );
        let ring = |r: usize, c: usize| s[r * 8 + c];
        assert!(ring(0, 0) > ring(1, 1));
        assert!(ring(1, 1) > ring(2, 2));
        assert!(ring(2, 2) > ring(3, 3));
    }

    #[test]
    fn pattern_ordering_matches_fig6() {
        let peak = |p| {
            reference_per_via_stress(LayerPair::IntermediateTop, p, 4, 4, 2.0)
                .into_iter()
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let plus = peak(IntersectionPattern::Plus);
        let tee = peak(IntersectionPattern::Tee);
        let ell = peak(IntersectionPattern::Ell);
        assert!(plus > tee && tee > ell);
        // Magnitudes in the paper's 160-300 MPa window.
        for v in [plus, tee, ell] {
            assert!(v > 160e6 && v < 300e6, "{v}");
        }
    }

    #[test]
    fn width_interpolation_is_linear_and_clamped() {
        let t = StressTable::reference();
        let key = |w| {
            t.lookup(
                LayerPair::IntermediateTop,
                IntersectionPattern::Plus,
                4,
                4,
                w,
            )
            .unwrap()[0]
        };
        let (a, m, b) = (key(1.5), key(2.0), key(3.0));
        // Interpolated midpoint between 2.0 and 3.0.
        let mid = key(2.5);
        assert!((mid - 0.5 * (m + b)).abs() < 1.0);
        // Clamped outside the characterized range.
        assert_eq!(key(0.5), a);
        assert_eq!(key(10.0), b);
    }

    #[test]
    fn lookup_misses_unknown_configs() {
        let t = StressTable::reference();
        assert!(t
            .lookup(
                LayerPair::IntermediateTop,
                IntersectionPattern::Plus,
                3,
                5,
                2.0
            )
            .is_none());
    }

    #[test]
    fn fea_characterization_populates_entries() {
        // One small, coarse model end-to-end through the FEM engine.
        let model = CharacterizationModel {
            array: ViaArrayGeometry::square(2, 0.5, 1.0),
            margin: 0.5,
            resolution: 0.4,
            ..CharacterizationModel::default()
        };
        let t = StressTable::characterize_with_fea(&[(model, LayerPair::IntermediateTop)]).unwrap();
        let s = t
            .lookup(
                LayerPair::IntermediateTop,
                IntersectionPattern::Plus,
                2,
                2,
                2.0,
            )
            .unwrap();
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|&v| v > 0.0));
    }

    fn coarse_model(resolution: f64) -> CharacterizationModel {
        CharacterizationModel {
            array: ViaArrayGeometry::square(2, 0.5, 1.0),
            margin: 0.5,
            resolution,
            ..CharacterizationModel::default()
        }
    }

    #[test]
    fn fea_fan_out_is_thread_count_invariant_and_dedups_layer_pairs() {
        let model = coarse_model(0.5);
        let models = [
            (model, LayerPair::IntermediateIntermediate),
            (model, LayerPair::IntermediateTop), // layer-pair twin: one solve
            (
                CharacterizationModel {
                    pattern: IntersectionPattern::Tee,
                    ..model
                },
                LayerPair::TopTop,
            ),
        ];
        let run = |threads| {
            StressTable::characterize_with_fea_opts(
                &models,
                &FeaOptions {
                    threads,
                    ..FeaOptions::default()
                },
            )
            .unwrap()
        };
        let (serial, report) = run(1);
        assert_eq!(report.primitives.len(), 3);
        assert_eq!(report.primitives[1].solver, "dedup");
        assert_eq!(
            serial.entries()[0].per_via_stress,
            serial.entries()[1].per_via_stress
        );
        for threads in [2, 8] {
            let (par, _) = run(threads);
            for (a, b) in par.entries().iter().zip(serial.entries()) {
                assert_eq!(a, b, "threads = {threads}");
            }
        }
    }

    #[test]
    fn cache_round_trip_reproduces_entries_and_invalidates_on_changes() {
        let dir =
            std::env::temp_dir().join(format!("emgrid-table-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = StressCache::new(&dir);
        let models = [(coarse_model(0.5), LayerPair::IntermediateTop)];
        let opts = FeaOptions {
            cache: Some(cache.clone()),
            ..FeaOptions::default()
        };

        let (cold, cold_report) = StressTable::characterize_with_fea_opts(&models, &opts).unwrap();
        assert_eq!(cold_report.cache_hits, 0);
        let (warm, warm_report) = StressTable::characterize_with_fea_opts(&models, &opts).unwrap();
        assert_eq!(warm_report.cache_hits, 1);
        assert_eq!(warm_report.primitives[0].solver, "cache");
        // Reloaded entries are identical — down to the last bit.
        assert_eq!(warm.entries(), cold.entries());

        // A resolution change is a different key: the warm entry must NOT
        // be served, and the fresh solve differs.
        let finer = [(coarse_model(0.4), LayerPair::IntermediateTop)];
        let (_, finer_report) = StressTable::characterize_with_fea_opts(&finer, &opts).unwrap();
        assert_eq!(finer_report.cache_hits, 0, "resolution change must miss");

        // A ΔT change likewise invalidates.
        let mut hotter_model = coarse_model(0.5);
        hotter_model.operating_temperature += 50.0;
        let hotter = [(hotter_model, LayerPair::IntermediateTop)];
        let (_, hotter_report) = StressTable::characterize_with_fea_opts(&hotter, &opts).unwrap();
        assert_eq!(hotter_report.cache_hits, 0, "ΔT change must miss");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_hits_across_kernel_backends() {
        // The microkernel backend is not part of the cache key — backends
        // are bit-identical, so an entry written under the scalar backend
        // must be served (and be byte-equal) under the blocked one.
        let dir = std::env::temp_dir().join(format!(
            "emgrid-table-kernels-cache-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = StressCache::new(&dir);
        let models = [(coarse_model(0.5), LayerPair::IntermediateTop)];
        let run = |kernels| {
            StressTable::characterize_with_fea_opts(
                &models,
                &FeaOptions {
                    kernels,
                    cache: Some(cache.clone()),
                    ..FeaOptions::default()
                },
            )
            .unwrap()
        };

        let (scalar, scalar_report) = run(KernelBackend::Scalar);
        assert_eq!(scalar_report.cache_hits, 0);
        let (blocked, blocked_report) = run(KernelBackend::Blocked);
        assert_eq!(
            blocked_report.cache_hits, 1,
            "backend change must still hit"
        );
        assert_eq!(blocked.entries(), scalar.entries());

        // And a fresh blocked solve (no cache) reproduces the scalar bytes.
        let (fresh, _) = StressTable::characterize_with_fea_opts(
            &models,
            &FeaOptions {
                kernels: KernelBackend::Blocked,
                ..FeaOptions::default()
            },
        )
        .unwrap();
        assert_eq!(fresh.entries(), scalar.entries());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn insert_checks_length() {
        let mut t = StressTable::new();
        t.insert(StressEntry {
            layer_pair: LayerPair::TopTop,
            pattern: IntersectionPattern::Plus,
            rows: 2,
            cols: 2,
            wire_width: 2.0,
            per_via_stress: vec![1.0; 3],
        });
    }
}
