//! On-die variation for the Monte Carlo levels.
//!
//! The paper's Algorithm 1 assumes nominal, uniform conditions: every via
//! sees the same share of the array current, the same temperature, and the
//! same drawn linewidth. The multi-via follow-up line (arXiv 1801.08281)
//! shows the current split is *not* uniform — vias near the feeding edges
//! carry more — and the chip-scale variation line (arXiv 1712.05562) models
//! on-die temperature/geometry variation as spatially correlated random
//! walks. This module provides both extensions:
//!
//! * [`Variation::edge_weights`] — a static, geometry-derived per-via
//!   current weighting (edge and corner vias carry more than interior
//!   ones),
//! * [`random_walk_field`] / [`correlated_field_2d`] — spatially correlated
//!   unit-variance fields sampled once per trial, used for per-via
//!   temperature offsets and linewidth multipliers,
//! * [`Variation::temperature_life_scale`] — the Arrhenius lifetime factor
//!   of a local temperature offset,
//! * [`VarianceDecomposition`] — the random-walk variance-analysis output:
//!   how much of the ln-TTF variance the correlated fields contribute on
//!   top of the void-nucleation randomness.
//!
//! # Determinism
//!
//! Variation-enabled trials draw from **derived sub-streams**
//! ([`emgrid_stats::substream_rng`]): void draws, the temperature field,
//! and the linewidth field each consume an independent stream of
//! `(seed, trial)`, so enabling one source never shifts another's sequence
//! and results stay bit-identical for any thread count.

use emgrid_em::Technology;
use emgrid_stats::Rng;

/// Sub-stream channel for critical-stress (void nucleation) draws.
pub const CHANNEL_VOID: u64 = 0;
/// Sub-stream channel for the per-trial temperature field.
pub const CHANNEL_FIELD: u64 = 1;
/// Sub-stream channel for the per-trial linewidth (geometry) field.
pub const CHANNEL_GEOMETRY: u64 = 2;

/// Smallest allowed relative linewidth after variation, to keep per-via
/// current densities finite.
pub const MIN_RELATIVE_WIDTH: f64 = 0.1;

/// On-die variation knobs for a via-array Monte Carlo.
///
/// The default is the nominal model: no edge weighting, no fields. A
/// simulator configured with an inactive variation still routes its draws
/// through the legacy single trial stream, so results stay byte-identical
/// with pre-variation builds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Variation {
    /// Extra current weight per exposed array side: a via touching `s`
    /// array edges carries weight `1 + factor·s` before renormalization
    /// (corner vias touch two sides). `0` keeps the configured current
    /// model's split.
    pub edge_current_factor: f64,
    /// Standard deviation of the per-via correlated temperature offset,
    /// °C. `0` disables the temperature field.
    pub temperature_sigma_c: f64,
    /// Relative standard deviation of the per-via correlated linewidth
    /// multiplier. `0` disables the linewidth field.
    pub linewidth_sigma: f64,
}

impl Variation {
    /// Whether any variation source is enabled.
    pub fn is_active(&self) -> bool {
        self.edge_current_factor > 0.0
            || self.temperature_sigma_c > 0.0
            || self.linewidth_sigma > 0.0
    }

    /// The same variation with both correlated fields frozen at nominal —
    /// the counterfactual the variance decomposition compares against.
    pub fn frozen_fields(&self) -> Variation {
        Variation {
            edge_current_factor: self.edge_current_factor,
            temperature_sigma_c: 0.0,
            linewidth_sigma: 0.0,
        }
    }

    /// Static per-via current weights for a `rows × cols` array: weight
    /// `1 + factor·s` where `s` counts the array sides the via touches.
    /// The Monte Carlo renormalizes the weighted currents so the total is
    /// conserved; only the *relative* weights matter.
    pub fn edge_weights(&self, rows: usize, cols: usize) -> Vec<f64> {
        let mut w = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let mut sides = 0u32;
                if r == 0 {
                    sides += 1;
                }
                if r + 1 == rows {
                    sides += 1;
                }
                if c == 0 {
                    sides += 1;
                }
                if c + 1 == cols {
                    sides += 1;
                }
                w.push(1.0 + self.edge_current_factor * f64::from(sides));
            }
        }
        w
    }

    /// Lifetime multiplier for a via running `offset_c` °C away from the
    /// technology's nominal operating temperature.
    ///
    /// `TTF ∝ 1/D_eff` with `D_eff = D₀·exp(−E_a/kT)`, so the factor is
    /// `exp(E_a/k_B · (1/T − 1/T_nom))`: hotter vias live (much) shorter.
    pub fn temperature_life_scale(tech: &Technology, offset_c: f64) -> f64 {
        let t_nom = tech.temperature_k();
        let t = (t_nom + offset_c).max(1.0);
        let boltzmann = tech.thermal_energy() / t_nom;
        (tech.activation_energy() / boltzmann * (1.0 / t - 1.0 / t_nom)).exp()
    }

    /// First-order ln-TTF sigma of the temperature field, for levels that
    /// work with fitted lifetime distributions instead of the Arrhenius
    /// law directly: `|d ln TTF / dT|·σ_T = E_a/(k_B·T²)·σ_T`.
    pub fn grid_ttf_ln_sigma(&self, tech: &Technology) -> f64 {
        let t_nom = tech.temperature_k();
        let boltzmann = tech.thermal_energy() / t_nom;
        tech.activation_energy() / (boltzmann * t_nom * t_nom) * self.temperature_sigma_c
    }
}

/// A spatially correlated field over `len` positions with unit marginal
/// variance: position `k` is `W_k/√(k+1)` where `W` is a standard random
/// walk. Neighboring positions share their walk prefix, so correlation
/// decays slowly with distance — the 1712.05562 on-die variation shape.
pub fn random_walk_field<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Vec<f64> {
    let mut walk = 0.0;
    (0..len)
        .map(|k| {
            walk += rng.next_standard_normal();
            walk / ((k + 1) as f64).sqrt()
        })
        .collect()
}

/// A separable 2-D correlated field over a `rows × cols` array, row-major:
/// `f(r,c) = (F_row(r) + F_col(c))/√2`, built from two independent
/// [`random_walk_field`]s so the marginal variance stays one.
pub fn correlated_field_2d<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Vec<f64> {
    let row_f = random_walk_field(rows, rng);
    let col_f = random_walk_field(cols, rng);
    let norm = 1.0 / 2f64.sqrt();
    let mut field = Vec::with_capacity(rows * cols);
    for rf in &row_f {
        for cf in &col_f {
            field.push((rf + cf) * norm);
        }
    }
    field
}

/// Random-walk variance analysis: the decomposition of `Var[ln TTF]` into
/// the void-nucleation contribution and the residual contributed by the
/// correlated temperature/linewidth fields.
///
/// Computed by replaying the same trial budget twice with the same seed:
/// once with every variation source active, once with the fields frozen
/// ([`Variation::frozen_fields`]). Because void draws come from their own
/// sub-stream, the two runs share identical critical-stress samples and
/// the difference isolates the field contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarianceDecomposition {
    /// `Var[ln TTF]` with all variation sources active.
    pub total: f64,
    /// `Var[ln TTF]` with the correlated fields frozen (void randomness
    /// plus any static edge weighting only).
    pub void: f64,
    /// `total − void`, clamped at zero: the field contribution.
    pub environment: f64,
}

impl VarianceDecomposition {
    /// Builds the decomposition from two matched ln-TTF sample sets.
    ///
    /// # Panics
    ///
    /// Panics if either sample set has fewer than two samples or the
    /// lengths differ.
    pub fn from_ln_samples(varied: &[f64], frozen: &[f64]) -> VarianceDecomposition {
        assert_eq!(varied.len(), frozen.len(), "matched runs must align");
        assert!(varied.len() >= 2, "variance needs at least two samples");
        let total = sample_variance(varied);
        let void = sample_variance(frozen);
        VarianceDecomposition {
            total,
            void,
            environment: (total - void).max(0.0),
        }
    }
}

/// Unbiased sample variance.
fn sample_variance(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emgrid_stats::seeded_rng;

    #[test]
    fn edge_weights_rank_corner_over_edge_over_interior() {
        let var = Variation {
            edge_current_factor: 0.5,
            ..Variation::default()
        };
        let w = var.edge_weights(4, 4);
        assert_eq!(w.len(), 16);
        assert_eq!(w[0], 2.0); // corner: two sides
        assert_eq!(w[1], 1.5); // edge: one side
        assert_eq!(w[5], 1.0); // interior
    }

    #[test]
    fn zero_factor_weights_are_uniform() {
        let w = Variation::default().edge_weights(3, 5);
        assert!(w.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn random_walk_field_is_unit_variance_and_correlated() {
        let mut rng = seeded_rng(11);
        let n = 4000;
        let mut first = Vec::new();
        let mut sum_sq = 0.0;
        let mut corr = 0.0;
        for _ in 0..n {
            let f = random_walk_field(8, &mut rng);
            first.push(f[0]);
            sum_sq += f[7] * f[7];
            corr += f[6] * f[7];
        }
        let var_last = sum_sq / n as f64;
        assert!((var_last - 1.0).abs() < 0.1, "var {var_last}");
        // Neighbors share a 7-step walk prefix: corr ≈ √(7/8).
        let rho = corr / n as f64 / var_last;
        assert!(rho > 0.8, "rho {rho}");
    }

    #[test]
    fn correlated_2d_field_has_unit_marginals() {
        let mut rng = seeded_rng(13);
        let n = 4000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let f = correlated_field_2d(4, 4, &mut rng);
            sum += f[5];
            sum_sq += f[5] * f[5];
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.08, "mean {mean}");
        assert!((var - 1.0).abs() < 0.12, "var {var}");
    }

    #[test]
    fn hotter_offsets_shorten_life() {
        let tech = Technology::default();
        let hot = Variation::temperature_life_scale(&tech, 20.0);
        let cold = Variation::temperature_life_scale(&tech, -20.0);
        assert!(hot < 1.0 && cold > 1.0, "hot {hot}, cold {cold}");
        assert_eq!(Variation::temperature_life_scale(&tech, 0.0), 1.0);
    }

    #[test]
    fn grid_sigma_matches_exact_scale_to_first_order() {
        let tech = Technology::default();
        let var = Variation {
            temperature_sigma_c: 5.0,
            ..Variation::default()
        };
        let ln_sigma = var.grid_ttf_ln_sigma(&tech);
        let exact = -Variation::temperature_life_scale(&tech, 5.0).ln();
        assert!(
            (ln_sigma - exact).abs() / exact < 0.05,
            "ln_sigma {ln_sigma} vs exact {exact}"
        );
    }

    #[test]
    fn variance_decomposition_clamps_and_splits() {
        let varied = [1.0, 3.0, 5.0, 7.0];
        let frozen = [2.0, 3.0, 4.0, 5.0];
        let d = VarianceDecomposition::from_ln_samples(&varied, &frozen);
        assert!(d.total > d.void);
        assert!((d.environment - (d.total - d.void)).abs() < 1e-12);
        let swapped = VarianceDecomposition::from_ln_samples(&frozen, &varied);
        assert_eq!(swapped.environment, 0.0);
    }
}
