//! Current redistribution inside a via array.
//!
//! When vias fail, the survivors carry the array current. The paper's
//! Algorithm 1 recomputes component currents after every failure; this
//! module supplies the two models used for that step:
//!
//! * [`CurrentModel::Uniform`] — surviving vias share the current equally
//!   (the paper's first-order model: TTF scales by `(n/(n−n_f))²`),
//! * [`CurrentModel::Network`] — the via array as a resistor network: two
//!   conducting plates (the wire segments above and below) connected by the
//!   surviving vias. Solving the network captures **current crowding**: vias
//!   near the feeding edges carry more than interior vias (the effect
//!   studied by the multi-via model of the paper's reference \[4\]).

use emgrid_sparse::{FactorOptions, LdlFactor, TripletMatrix};

/// Parameters of the plate-network redistribution model (conductances in
/// siemens).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkParams {
    /// Conductance of one via.
    pub via_conductance: f64,
    /// Conductance of one inter-via plate segment (both plates).
    pub plate_conductance: f64,
    /// Conductance tying the collection edge to the external circuit.
    pub contact_conductance: f64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        // A 0.25 µm Cu via is ~0.1 Ω; a via-pitch square of 0.3 µm plate is
        // ~0.1 Ω/sq. Their ratio — not the absolute values — sets the
        // crowding strength.
        NetworkParams {
            via_conductance: 8.0,
            plate_conductance: 10.0,
            contact_conductance: 100.0,
        }
    }
}

/// How current redistributes across surviving vias.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CurrentModel {
    /// Equal sharing among survivors.
    #[default]
    Uniform,
    /// Plate-network solve with current crowding.
    Network(NetworkParams),
}

impl CurrentModel {
    /// Per-via currents (A) for a `rows × cols` array given the alive mask,
    /// normalized so alive currents sum to `total_current`. Dead vias carry
    /// zero.
    ///
    /// Current enters the array from the upper wire (running along the row
    /// direction: the first and last rows of the upper plate) and leaves by
    /// the lower wire (the first and last columns of the lower plate),
    /// matching the Plus-intersection topology.
    ///
    /// # Panics
    ///
    /// Panics if `alive.len() != rows * cols`, if no via is alive, or if
    /// `total_current <= 0`.
    pub fn via_currents(
        &self,
        rows: usize,
        cols: usize,
        alive: &[bool],
        total_current: f64,
    ) -> Vec<f64> {
        let n = rows * cols;
        assert_eq!(alive.len(), n, "alive mask length mismatch");
        assert!(total_current > 0.0, "total current must be positive");
        let alive_count = alive.iter().filter(|&&a| a).count();
        assert!(alive_count > 0, "at least one via must be alive");
        match self {
            CurrentModel::Uniform => {
                let share = total_current / alive_count as f64;
                alive.iter().map(|&a| if a { share } else { 0.0 }).collect()
            }
            CurrentModel::Network(p) => network_currents(rows, cols, alive, total_current, p),
        }
    }
}

/// Solves the two-plate resistor network and returns per-via currents.
fn network_currents(
    rows: usize,
    cols: usize,
    alive: &[bool],
    total_current: f64,
    p: &NetworkParams,
) -> Vec<f64> {
    let n = rows * cols;
    let upper = |r: usize, c: usize| r * cols + c;
    let lower = |r: usize, c: usize| n + r * cols + c;
    let mut g = TripletMatrix::new(2 * n, 2 * n);
    let mut stamp = |a: usize, b: usize, cond: f64| {
        g.push(a, a, cond);
        g.push(b, b, cond);
        g.push(a, b, -cond);
        g.push(b, a, -cond);
    };
    // Plate meshes (both plates identical).
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                stamp(upper(r, c), upper(r, c + 1), p.plate_conductance);
                stamp(lower(r, c), lower(r, c + 1), p.plate_conductance);
            }
            if r + 1 < rows {
                stamp(upper(r, c), upper(r + 1, c), p.plate_conductance);
                stamp(lower(r, c), lower(r + 1, c), p.plate_conductance);
            }
        }
    }
    // Vias.
    for r in 0..rows {
        for c in 0..cols {
            if alive[r * cols + c] {
                stamp(upper(r, c), lower(r, c), p.via_conductance);
            }
        }
    }
    // Ground ties at the collection edge (lower plate, first & last column).
    let mut rhs = vec![0.0; 2 * n];
    for r in 0..rows {
        for c in [0, cols.saturating_sub(1)] {
            let node = lower(r, c);
            g.push(node, node, p.contact_conductance);
        }
    }
    // Injection at the feed edge (upper plate, first & last row).
    let feed_rows: Vec<usize> = if rows == 1 {
        vec![0]
    } else {
        vec![0, rows - 1]
    };
    let feed_count = (feed_rows.len() * cols) as f64;
    for &r in &feed_rows {
        for c in 0..cols {
            rhs[upper(r, c)] += total_current / feed_count;
        }
    }
    let matrix = g.to_csr();
    // Pinned to the scalar RCM path: this runs once per Monte Carlo failure
    // event on a <=130-node network, where AMD/supernode setup costs more
    // than it saves and the published trial streams must stay bit-identical.
    let v = LdlFactor::factor_with(&matrix, &FactorOptions::scalar_rcm())
        .expect("plate network is SPD while any via is alive")
        .solve(&rhs);
    let mut currents = vec![0.0; n];
    let mut sum = 0.0;
    for r in 0..rows {
        for c in 0..cols {
            let idx = r * cols + c;
            if alive[idx] {
                let i = p.via_conductance * (v[upper(r, c)] - v[lower(r, c)]);
                currents[idx] = i;
                sum += i;
            }
        }
    }
    // Normalize out the tiny current lost to numerical residue so the
    // invariant Σ I_via = I_total holds exactly.
    let scale = total_current / sum;
    for i in &mut currents {
        *i *= scale;
    }
    currents
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shares_equally_and_skips_dead() {
        let alive = vec![true, false, true, true];
        let i = CurrentModel::Uniform.via_currents(2, 2, &alive, 9.0);
        assert_eq!(i, vec![3.0, 0.0, 3.0, 3.0]);
    }

    #[test]
    fn currents_sum_to_total_for_both_models() {
        let alive = vec![true; 16];
        for model in [
            CurrentModel::Uniform,
            CurrentModel::Network(NetworkParams::default()),
        ] {
            let i = model.via_currents(4, 4, &alive, 0.01);
            let sum: f64 = i.iter().sum();
            assert!((sum - 0.01).abs() < 1e-12, "{model:?}: {sum}");
        }
    }

    #[test]
    fn network_model_crowds_current_at_the_perimeter() {
        let alive = vec![true; 16];
        let i = CurrentModel::Network(NetworkParams::default()).via_currents(4, 4, &alive, 1.0);
        // Feed rows are 0 and 3; collection columns are 0 and 3. A corner
        // via (0,0) must beat the interior via (1,1).
        assert!(i[0] > i[5], "corner {} vs interior {}", i[0], i[5]);
        // All currents positive.
        assert!(i.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn failure_shifts_current_to_neighbors() {
        let mut alive = vec![true; 16];
        let model = CurrentModel::Network(NetworkParams::default());
        let before = model.via_currents(4, 4, &alive, 1.0);
        alive[0] = false; // corner via dies
        let after = model.via_currents(4, 4, &alive, 1.0);
        assert_eq!(after[0], 0.0);
        // Its neighbors (0,1) and (1,0) pick up current.
        assert!(after[1] > before[1]);
        assert!(after[4] > before[4]);
        // Totals conserved.
        let sum: f64 = after.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_via_carries_everything() {
        for model in [
            CurrentModel::Uniform,
            CurrentModel::Network(NetworkParams::default()),
        ] {
            let i = model.via_currents(1, 1, &[true], 2.5);
            assert!((i[0] - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn last_survivor_takes_all() {
        let mut alive = vec![false; 16];
        alive[5] = true;
        let model = CurrentModel::Network(NetworkParams::default());
        let i = model.via_currents(4, 4, &alive, 1.0);
        assert!((i[5] - 1.0).abs() < 1e-9);
        assert!(i.iter().enumerate().all(|(k, &v)| k == 5 || v == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one via must be alive")]
    fn all_dead_panics() {
        CurrentModel::Uniform.via_currents(2, 2, &[false; 4], 1.0);
    }

    #[test]
    fn stronger_plates_reduce_crowding() {
        let alive = vec![true; 16];
        let weak = CurrentModel::Network(NetworkParams {
            plate_conductance: 2.0,
            ..NetworkParams::default()
        })
        .via_currents(4, 4, &alive, 1.0);
        let strong = CurrentModel::Network(NetworkParams {
            plate_conductance: 1000.0,
            ..NetworkParams::default()
        })
        .via_currents(4, 4, &alive, 1.0);
        let spread = |v: &[f64]| {
            let max = v.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
            let min = v.iter().fold(f64::INFINITY, |m, &x| m.min(x));
            max / min
        };
        assert!(spread(&weak) > spread(&strong));
        // With near-ideal plates the distribution approaches uniform.
        assert!(spread(&strong) < 1.05);
    }
}
