//! Via-array configuration, the Eq. (5) resistance model, and failure
//! criteria.

use emgrid_fea::geometry::{IntersectionPattern, ViaArrayGeometry};

use crate::stress_table::LayerPair;

/// Fractional resistance increase `ΔR/R = n_F / (n − n_F)` after `n_f` of
/// `n` vias fail — Eq. (5) of the paper.
///
/// Returns `f64::INFINITY` when all vias have failed.
///
/// # Panics
///
/// Panics if `n == 0` or `n_f > n`.
///
/// # Example
///
/// ```
/// use emgrid_via::resistance_increase;
///
/// // The paper's example: one of 16 vias -> 6.7% shift; eight -> 100%.
/// assert!((resistance_increase(16, 1) - 1.0 / 15.0).abs() < 1e-12);
/// assert_eq!(resistance_increase(16, 8), 1.0);
/// assert!(resistance_increase(16, 16).is_infinite());
/// ```
pub fn resistance_increase(n: usize, n_f: usize) -> f64 {
    assert!(n > 0, "array must have vias");
    assert!(n_f <= n, "cannot fail more vias than exist");
    if n_f == n {
        return f64::INFINITY;
    }
    n_f as f64 / (n - n_f) as f64
}

/// When a via array is declared failed (paper §4–§5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureCriterion {
    /// Failed once `n_f` vias have failed.
    ViaCount(usize),
    /// Failed when the array resistance reaches `ratio` × nominal
    /// (`ratio = 2.0` is the paper's `R = 2×`, i.e. half the vias).
    ResistanceRatio(f64),
    /// Failed only when every via has failed (`R = ∞`).
    OpenCircuit,
    /// Failed at the first via failure — the traditional pessimistic model
    /// the paper argues against.
    WeakestLink,
}

impl FailureCriterion {
    /// Number of via failures that trips this criterion for an `n`-via
    /// array.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, a `ViaCount` exceeds `n`, or a `ResistanceRatio`
    /// is `<= 1`.
    pub fn failures_to_trip(&self, n: usize) -> usize {
        assert!(n > 0, "array must have vias");
        match *self {
            FailureCriterion::ViaCount(k) => {
                assert!(k >= 1 && k <= n, "via count {k} out of range 1..={n}");
                k
            }
            FailureCriterion::ResistanceRatio(r) => {
                assert!(r > 1.0, "resistance ratio must exceed 1.0");
                // Smallest n_f with 1 + n_f/(n-n_f) >= r  ⇔  n_f >= n(1-1/r).
                let exact = n as f64 * (1.0 - 1.0 / r);
                (exact.ceil() as usize).clamp(1, n)
            }
            FailureCriterion::OpenCircuit => n,
            FailureCriterion::WeakestLink => 1,
        }
    }
}

impl std::fmt::Display for FailureCriterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCriterion::ViaCount(k) => write!(f, "{k}-via"),
            FailureCriterion::ResistanceRatio(r) => write!(f, "R={r}x"),
            FailureCriterion::OpenCircuit => write!(f, "R=inf"),
            FailureCriterion::WeakestLink => write!(f, "weakest-link"),
        }
    }
}

/// A fully-specified via-array instance: geometry, intersection pattern,
/// connected layer pair and wire width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViaArrayConfig {
    /// Geometric configuration (rows, cols, via size, pitch).
    pub geometry: ViaArrayGeometry,
    /// Intersection pattern (Plus / T / L).
    pub pattern: IntersectionPattern,
    /// Metal layer pair the array connects.
    pub layer_pair: LayerPair,
    /// Wire width, µm.
    pub wire_width: f64,
}

impl ViaArrayConfig {
    /// The paper's 1×1 single via in a 2 µm wire.
    pub fn paper_1x1(pattern: IntersectionPattern) -> Self {
        ViaArrayConfig {
            geometry: ViaArrayGeometry::paper_1x1(),
            pattern,
            layer_pair: LayerPair::IntermediateTop,
            wire_width: 2.0,
        }
    }

    /// The paper's 4×4 array in a 2 µm wire.
    pub fn paper_4x4(pattern: IntersectionPattern) -> Self {
        ViaArrayConfig {
            geometry: ViaArrayGeometry::paper_4x4(),
            pattern,
            layer_pair: LayerPair::IntermediateTop,
            wire_width: 2.0,
        }
    }

    /// The paper's 8×8 array in a 2 µm wire.
    pub fn paper_8x8(pattern: IntersectionPattern) -> Self {
        ViaArrayConfig {
            geometry: ViaArrayGeometry::paper_8x8(),
            pattern,
            layer_pair: LayerPair::IntermediateTop,
            wire_width: 2.0,
        }
    }

    /// Number of vias.
    pub fn count(&self) -> usize {
        self.geometry.count()
    }

    /// Cross-sectional area of one via, m².
    pub fn via_area_m2(&self) -> f64 {
        let w = self.geometry.via_width * 1e-6;
        w * w
    }

    /// Total conducting area, m².
    pub fn effective_area_m2(&self) -> f64 {
        self.geometry.effective_area() * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eq5_paper_values() {
        assert!((resistance_increase(16, 1) - 0.0667).abs() < 1e-3);
        assert_eq!(resistance_increase(16, 8), 1.0);
        assert_eq!(resistance_increase(4, 2), 1.0);
        assert!(resistance_increase(1, 1).is_infinite());
    }

    #[test]
    fn criterion_trip_counts_4x4() {
        let n = 16;
        assert_eq!(FailureCriterion::WeakestLink.failures_to_trip(n), 1);
        assert_eq!(FailureCriterion::OpenCircuit.failures_to_trip(n), 16);
        // R = 2x means 100% increase: half the vias.
        assert_eq!(
            FailureCriterion::ResistanceRatio(2.0).failures_to_trip(n),
            8
        );
        assert_eq!(FailureCriterion::ViaCount(4).failures_to_trip(n), 4);
    }

    #[test]
    fn resistance_ratio_matches_eq5_threshold() {
        // Trip count k must be the smallest with 1 + ΔR/R >= ratio.
        for n in [4usize, 16, 64] {
            for &r in &[1.1, 1.5, 2.0, 3.0, 10.0] {
                let k = FailureCriterion::ResistanceRatio(r).failures_to_trip(n);
                assert!(1.0 + resistance_increase(n, k) >= r - 1e-12);
                if k > 1 {
                    assert!(1.0 + resistance_increase(n, k - 1) < r);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "resistance ratio must exceed")]
    fn ratio_below_one_rejected() {
        FailureCriterion::ResistanceRatio(1.0).failures_to_trip(4);
    }

    #[test]
    fn config_areas() {
        use emgrid_fea::geometry::IntersectionPattern;
        for cfg in [
            ViaArrayConfig::paper_1x1(IntersectionPattern::Plus),
            ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
            ViaArrayConfig::paper_8x8(IntersectionPattern::Plus),
        ] {
            // All paper configs have 1 µm² = 1e-12 m² effective area.
            assert!((cfg.effective_area_m2() - 1e-12).abs() < 1e-24);
            assert!((cfg.via_area_m2() * cfg.count() as f64 - 1e-12).abs() < 1e-24);
        }
    }

    #[test]
    fn display_strings() {
        assert_eq!(FailureCriterion::WeakestLink.to_string(), "weakest-link");
        assert_eq!(FailureCriterion::OpenCircuit.to_string(), "R=inf");
        assert_eq!(FailureCriterion::ResistanceRatio(2.0).to_string(), "R=2x");
        assert_eq!(FailureCriterion::ViaCount(8).to_string(), "8-via");
    }

    proptest! {
        #[test]
        fn resistance_increase_is_monotone(n in 1usize..100, k in 0usize..99) {
            let k = k.min(n - 1);
            if k < n {
                prop_assert!(resistance_increase(n, k + 1) > resistance_increase(n, k));
            }
        }

        #[test]
        fn trip_count_monotone_in_ratio(n in 2usize..100, r1 in 1.01f64..5.0, dr in 0.0f64..5.0) {
            let k1 = FailureCriterion::ResistanceRatio(r1).failures_to_trip(n);
            let k2 = FailureCriterion::ResistanceRatio(r1 + dr).failures_to_trip(n);
            prop_assert!(k2 >= k1);
        }
    }
}
