//! EM signoff of a power grid from a SPICE deck.
//!
//! Models the paper's §5.2 flow on a deck that arrives as text (here,
//! generated and serialized first — in practice it would come from a file):
//! parse, detect via arrays, fix up shorted vias to the nominal array
//! resistance, and decide whether the grid meets a lifetime target under
//! the 10% IR-drop criterion.
//!
//! ```text
//! cargo run --example grid_signoff
//! ```

use emgrid::prelude::*;
use emgrid::spice::writer::write_string;
use emgrid::spice::{lint, repair_shorted_vias};

const TARGET_LIFETIME_YEARS: f64 = 3.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deck arrives as text (the paper uses the Nassif benchmarks).
    let deck = write_string(&GridSpec::custom("signoff", 14, 14).generate());
    let mut netlist = parse(&deck)?;

    // Lint the deck, then apply the paper's §5.2 retrofit: "the via
    // connections in some of the original circuit netlists are
    // short-circuited ... we have modified the netlist to alter the
    // resistance of the vias".
    for issue in lint(&netlist) {
        println!("lint: {issue}");
    }
    let retrofitted = repair_shorted_vias(&mut netlist, 0.5);

    let grid = PowerGrid::from_netlist(netlist)?;
    let nominal = IrDropReport::evaluate(&grid, grid.nominal_solution());
    println!(
        "grid: {} nodes, {} via arrays, {} retrofitted; nominal IR drop {:.1}%",
        grid.netlist().node_count(),
        grid.via_sites().len(),
        retrofitted,
        nominal.worst_fraction * 100.0
    );

    // Characterize the chosen array once, then sign off the grid.
    let reliability = ViaArrayMc::from_reference_table(
        &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
        Technology::default(),
        1e10,
    )
    .characterize(1000, 11)
    .reliability(FailureCriterion::OpenCircuit)?;

    let result = PowerGridMc::new(grid, reliability)
        .with_system_criterion(SystemCriterion::IrDropFraction(0.10))
        .run(300, 12)?;

    let worst = result.worst_case_years();
    println!(
        "system TTF: median {:.1} yr, worst-case (0.3%ile) {:.1} yr",
        result.median_years(),
        worst
    );
    if worst >= TARGET_LIFETIME_YEARS {
        println!("SIGNOFF PASS: worst-case {worst:.1} yr >= target {TARGET_LIFETIME_YEARS} yr");
    } else {
        println!(
            "SIGNOFF FAIL: worst-case {worst:.1} yr < target {TARGET_LIFETIME_YEARS} yr — \
             consider 8x8 arrays (more redundancy, lower interior stress)"
        );
    }
    Ok(())
}
