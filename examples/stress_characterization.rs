//! Thermomechanical stress characterization with the built-in FEA engine.
//!
//! Runs the paper's §3 characterization flow on a small via-array primitive
//! (coarse mesh so the example finishes in seconds), prints the per-via
//! stress map, and contrasts it with the bundled reference table.
//!
//! ```text
//! cargo run --release --example stress_characterization
//! ```

use emgrid::prelude::*;
use emgrid::via::stress_table::{LayerPair, StressTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced-size primitive: 2x2 array so the FEA solves quickly even in
    // a debug build. The production flow would use the paper geometries.
    let model = CharacterizationModel {
        pattern: IntersectionPattern::Plus,
        array: ViaArrayGeometry::square(2, 0.5, 1.0),
        wire_width: 2.0,
        margin: 0.75,
        resolution: 0.3,
        ..CharacterizationModel::default()
    };
    println!(
        "FEA primitive: {}x{} array, {} pattern, ΔT = {} K",
        model.array.rows,
        model.array.cols,
        model.pattern,
        model.delta_t()
    );

    let field = ThermalStressAnalysis::new(model).run()?;
    let mesh_cells = field.mesh().occupied_count();
    println!("mesh: {mesh_cells} occupied hexahedra");

    println!("per-via peak tensile hydrostatic stress (MPa):");
    let peaks = field.per_via_peak_stress();
    for r in 0..model.array.rows {
        for c in 0..model.array.cols {
            print!("{:8.1}", peaks[r * model.array.cols + c] / 1e6);
        }
        println!();
    }

    // A line scan through the first via row (the paper's Fig. 1 view).
    let scan = field.via_row_scan(0);
    let (min, max) = scan
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), s| {
            (lo.min(s.hydrostatic_mpa), hi.max(s.hydrostatic_mpa))
        });
    println!(
        "row-0 scan: {} samples, sigma_H in [{min:.0}, {max:.0}] MPa",
        scan.len()
    );

    // Build a table from this FEA run and compare with the bundled
    // reference model for the paper's 4x4 configuration.
    let fea_table = StressTable::characterize_with_fea(&[(model, LayerPair::IntermediateTop)])?;
    println!("FEA-built table entries: {}", fea_table.len());

    let reference = StressTable::reference();
    let ref_4x4 = reference
        .lookup(
            LayerPair::IntermediateTop,
            IntersectionPattern::Plus,
            4,
            4,
            2.0,
        )
        .expect("reference covers the paper configs");
    println!(
        "bundled reference 4x4 Plus @2um: perimeter {:.0} MPa, interior {:.0} MPa",
        ref_4x4[0] / 1e6,
        ref_4x4[5] / 1e6
    );
    println!("(the reference table is what the Monte Carlo layers consume by default)");
    Ok(())
}
