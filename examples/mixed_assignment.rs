//! Lifetime-vs-area exploration with mixed via-array assignment.
//!
//! Two extensions the paper's conclusion calls for, combined:
//!
//! * **area awareness** — larger equal-area arrays occupy more metal once
//!   minimum via spacing rules are honored (`emgrid_via::layout`);
//! * **mixed configurations** — "in practice, a combination of the via
//!   array configuration can be used": upgrade only the high-current sites
//!   to the larger array (`SiteAssignment::ByCurrentDensity`).
//!
//! The example prints system lifetime and total via-array metal area for
//! uniform-4×4, uniform-8×8 and mixed assignments.
//!
//! ```text
//! cargo run --release --example mixed_assignment
//! ```

use emgrid::prelude::*;
use emgrid::via::layout::{footprint, DesignRules};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::default();
    let rules = DesignRules::default();
    let spec = GridSpec::custom("mixed", 16, 16);

    // Characterize both candidate arrays once.
    let rel4 = ViaArrayMc::from_reference_table(
        &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
        tech,
        1e10,
    )
    .characterize(800, 3)
    .reliability(FailureCriterion::OpenCircuit)?;
    let rel8 = ViaArrayMc::from_reference_table(
        &ViaArrayConfig::paper_8x8(IntersectionPattern::Plus),
        tech,
        1e10,
    )
    .characterize(800, 3)
    .reliability(FailureCriterion::OpenCircuit)?;

    let area4 = footprint(&rel4.config.geometry, &rules).area();
    let area8 = footprint(&rel8.config.geometry, &rules).area();
    println!("via-array footprints: 4x4 = {area4:.2} um^2, 8x8 = {area8:.2} um^2");

    let scenarios: [(&str, SiteAssignment); 4] = [
        ("uniform 4x4", SiteAssignment::Uniform(rel4)),
        (
            "mixed (hot >= 8e9 A/m^2)",
            SiteAssignment::ByCurrentDensity {
                threshold: 8e9,
                low: rel4,
                high: rel8,
            },
        ),
        (
            "mixed (hot >= 5e9 A/m^2)",
            SiteAssignment::ByCurrentDensity {
                threshold: 5e9,
                low: rel4,
                high: rel8,
            },
        ),
        ("uniform 8x8", SiteAssignment::Uniform(rel8)),
    ];

    println!(
        "{:<26} {:>8} {:>10} {:>12} {:>14}",
        "assignment", "8x8 sites", "median(yr)", "0.3%ile(yr)", "array area(um^2)"
    );
    for (label, assignment) in scenarios {
        let grid = PowerGrid::from_netlist(spec.generate())?;
        let mc = PowerGridMc::new(grid, rel4)
            .with_assignment(assignment)
            .with_system_criterion(SystemCriterion::IrDropFraction(0.10));
        let rels = mc.site_reliabilities();
        let upgraded = rels.iter().filter(|r| r.config.count() == 64).count();
        let total_area: f64 = rels
            .iter()
            .map(|r| footprint(&r.config.geometry, &rules).area())
            .sum();
        let result = mc.run(200, 17)?;
        println!(
            "{:<26} {:>8} {:>10.2} {:>12.2} {:>14.1}",
            label,
            upgraded,
            result.median_years(),
            result.worst_case_years(),
            total_area
        );
    }
    println!();
    println!("Takeaway: upgrading only the hot sites recovers most of the");
    println!("uniform-8x8 lifetime at a fraction of the extra via-array area.");
    Ok(())
}
