//! Quickstart: characterize a via array and estimate a power grid's
//! EM-limited lifetime, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use emgrid::prelude::*;
use emgrid::ReliabilityStudy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic two-layer power grid (IBM-benchmark style).
    let spec = GridSpec::custom("quickstart", 16, 16);

    // 2. Characterize the paper's 4x4 Plus-shaped via array and run the
    //    hierarchical Monte Carlo with a 10% IR-drop failure criterion.
    let outcome = ReliabilityStudy::new(spec)
        .with_array(ViaArrayConfig::paper_4x4(IntersectionPattern::Plus))
        .with_via_criterion(FailureCriterion::OpenCircuit)
        .with_system_criterion(SystemCriterion::IrDropFraction(0.10))
        .with_trials(500, 200)
        .run(2024)?;

    println!(
        "nominal IR drop : {:.1}% of Vdd",
        outcome.nominal_ir.worst_fraction * 100.0
    );
    println!(
        "via-array TTF   : median {:.1} years (lognormal sigma {:.2})",
        outcome.reliability.distribution.median() / SECONDS_PER_YEAR,
        outcome.reliability.distribution.sigma()
    );
    println!(
        "system TTF      : median {:.1} years, worst-case (0.3%ile) {:.1} years",
        outcome.grid_result.median_years(),
        outcome.grid_result.worst_case_years()
    );
    println!(
        "failures/trial  : {:.1} via arrays before the IR threshold",
        outcome.grid_result.mean_failures()
    );
    Ok(())
}
