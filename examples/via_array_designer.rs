//! Via-array design exploration: the decision the paper's intro motivates.
//!
//! A power-grid designer must pick a via-array configuration for the
//! thick-metal intersections. This example characterizes the candidate
//! configurations (same 1 µm² conducting area, hence the same nominal
//! resistance) under several failure criteria and intersection patterns,
//! and prints a comparison table.
//!
//! ```text
//! cargo run --example via_array_designer
//! ```

use emgrid::prelude::*;

fn main() {
    let tech = Technology::default();
    let j = 1e10; // the characterization current density, A/m²
    let trials = 1000;

    println!(
        "Via-array reliability at j = {j:.0e} A/m², {}C operation",
        tech.operating_temperature_c
    );
    println!(
        "{:<6} {:<6} {:<14} {:>12} {:>12} {:>10}",
        "array", "patt", "criterion", "median(yr)", "0.3%ile(yr)", "KS fit"
    );

    for pattern in IntersectionPattern::ALL {
        for config in [
            ViaArrayConfig::paper_1x1(pattern),
            ViaArrayConfig::paper_4x4(pattern),
            ViaArrayConfig::paper_8x8(pattern),
        ] {
            let result = ViaArrayMc::from_reference_table(&config, tech, j).characterize(trials, 7);
            let criteria: Vec<FailureCriterion> = if config.count() == 1 {
                vec![FailureCriterion::OpenCircuit]
            } else {
                vec![
                    FailureCriterion::WeakestLink,
                    FailureCriterion::ResistanceRatio(2.0),
                    FailureCriterion::OpenCircuit,
                ]
            };
            for crit in criteria {
                let ecdf = result.ecdf(crit);
                let ks = result.fit_quality(crit).expect("fit succeeds");
                println!(
                    "{:<6} {:<6} {:<14} {:>12.2} {:>12.2} {:>10.3}",
                    format!("{}x{}", config.geometry.rows, config.geometry.cols),
                    pattern.to_string(),
                    crit.to_string(),
                    ecdf.median() / SECONDS_PER_YEAR,
                    ecdf.worst_case() / SECONDS_PER_YEAR,
                    ks
                );
            }
        }
    }

    println!();
    println!("Reading the table:");
    println!(" * larger arrays win at every criterion (redundancy + stress shielding);");
    println!(" * L-shaped corners outlive T edges outlive Plus interiors;");
    println!(" * the KS column shows the 2-parameter lognormal fit quality");
    println!("   that justifies handing a single distribution to grid signoff.");
}
