//! Determinism guarantees of the shared Monte Carlo runtime, end-to-end
//! through both levels of the hierarchical analysis: any thread count and
//! either scheduler must produce bit-identical samples in identical order,
//! with and without early termination.

use emgrid::prelude::*;

const J: f64 = 1e10;

fn via_mc() -> ViaArrayMc {
    ViaArrayMc::from_reference_table(
        &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
        Technology::default(),
        J,
    )
}

fn grid_mc() -> PowerGridMc {
    let rel = via_mc()
        .characterize(200, 3)
        .reliability(FailureCriterion::OpenCircuit)
        .unwrap();
    let grid = PowerGrid::from_netlist(GridSpec::custom("det", 10, 10).generate()).unwrap();
    PowerGridMc::new(grid, rel).with_system_criterion(SystemCriterion::IrDropFraction(0.10))
}

#[test]
fn via_characterization_is_thread_count_invariant() {
    let mc = via_mc();
    let seq = mc.characterize_with(150, 17, &RuntimeConfig::threaded(1));
    for threads in [2, 8] {
        let par = mc.characterize_with(150, 17, &RuntimeConfig::threaded(threads));
        // Bit-identical per-trial failure sequences, in trial order.
        assert_eq!(seq.samples(), par.samples(), "threads = {threads}");
        assert_eq!(
            seq.ttf_samples(FailureCriterion::OpenCircuit),
            par.ttf_samples(FailureCriterion::OpenCircuit),
        );
        assert_eq!(par.report().threads, threads);
    }
}

#[test]
fn grid_mc_is_thread_count_invariant() {
    let mc = grid_mc();
    let seq = mc.run_threaded(20, 29, 1).unwrap();
    for threads in [2, 8] {
        let par = mc.run_threaded(20, 29, threads).unwrap();
        // Bit-identical system TTFs AND identical failure orders (the site
        // histogram is sensitive to which array died in which trial).
        assert_eq!(seq.ttf_seconds(), par.ttf_seconds(), "threads = {threads}");
        assert_eq!(seq.failures_per_trial(), par.failures_per_trial());
        assert_eq!(seq.site_failure_counts(), par.site_failure_counts());
    }
}

/// Variation-enabled trials draw the correlated temperature/linewidth
/// fields from per-trial RNG sub-streams, so turning variation on must
/// not cost the thread-count invariance — every sample bit, and the
/// variance decomposition built from a replayed frozen-field run, must
/// agree across thread counts.
#[test]
fn varied_characterization_is_thread_count_invariant() {
    let mc = via_mc().with_variation(Variation {
        edge_current_factor: 0.5,
        temperature_sigma_c: 6.0,
        linewidth_sigma: 0.05,
    });
    let seq = mc.characterize_with(150, 17, &RuntimeConfig::threaded(1));
    for threads in [2, 8] {
        let par = mc.characterize_with(150, 17, &RuntimeConfig::threaded(threads));
        assert_eq!(seq.samples(), par.samples(), "threads = {threads}");
        assert_eq!(
            seq.ttf_samples(FailureCriterion::OpenCircuit),
            par.ttf_samples(FailureCriterion::OpenCircuit),
        );
    }
    let (_, d1) = mc.characterize_with_variance(96, 23, &RuntimeConfig::threaded(1));
    let (_, d4) = mc.characterize_with_variance(96, 23, &RuntimeConfig::threaded(4));
    assert_eq!(d1, d4);
}

/// The grid-level variation fields cross the same contract with the
/// solver's microkernel backend: every `(backend, thread count)` pair
/// must reproduce the same system TTFs and failure orders bit for bit.
#[test]
fn varied_grid_mc_is_thread_and_kernel_backend_invariant() {
    use emgrid::sparse::{FactorOptions, KernelBackend};

    let var = Variation {
        temperature_sigma_c: 8.0,
        linewidth_sigma: 0.05,
        ..Variation::default()
    };
    let mc = grid_mc().with_variation(GridVariation {
        ttf_ln_sigma: var.grid_ttf_ln_sigma(&Technology::default()),
        linewidth_sigma: var.linewidth_sigma,
    });
    let run = |kernels: KernelBackend, threads: usize| {
        mc.clone()
            .with_factor_options(FactorOptions::default().with_kernels(kernels))
            .run_threaded(20, 29, threads)
            .unwrap()
    };
    let seq = run(KernelBackend::Scalar, 1);
    for kernels in [KernelBackend::Scalar, KernelBackend::Blocked] {
        for threads in [2, 8] {
            let par = run(kernels, threads);
            let label = format!("kernels = {}, threads = {threads}", kernels.label());
            assert_eq!(seq.ttf_seconds(), par.ttf_seconds(), "{label}");
            assert_eq!(
                seq.failures_per_trial(),
                par.failures_per_trial(),
                "{label}"
            );
            assert_eq!(
                seq.site_failure_counts(),
                par.site_failure_counts(),
                "{label}"
            );
        }
    }
}

#[test]
fn work_stealing_matches_static_chunking() {
    let mc = grid_mc();
    let stealing = mc.run_threaded(20, 31, 4).unwrap();
    let chunked = mc.run_static_chunked(20, 31, 4).unwrap();
    assert_eq!(stealing.ttf_seconds(), chunked.ttf_seconds());
    assert_eq!(
        stealing.site_failure_counts(),
        chunked.site_failure_counts()
    );
}

#[test]
fn early_termination_is_thread_count_invariant() {
    // The stopping decision is taken at deterministic batch boundaries on
    // trial-ordered statistics, so even the *number* of trials run must
    // agree across thread counts.
    let mc = via_mc();
    let config = |threads| {
        RuntimeConfig::threaded(threads).with_early_stop(EarlyStop {
            target_half_width: 0.1,
            confidence: 0.95,
            min_trials: 32,
            batch: 32,
        })
    };
    let seq = mc.characterize_with(5_000, 41, &config(1));
    assert!(seq.report().stopped_early, "target should stop this run");
    for threads in [2, 8] {
        let par = mc.characterize_with(5_000, 41, &config(threads));
        assert_eq!(seq.trials(), par.trials(), "threads = {threads}");
        assert_eq!(seq.samples(), par.samples());
        assert_eq!(par.report().stopped_early, seq.report().stopped_early);
    }
}

#[test]
fn trials_run_is_scheduling_independent_telemetry() {
    let mc = via_mc();
    let r = mc.characterize_with(97, 53, &RuntimeConfig::threaded(3));
    let report = r.report();
    assert_eq!(report.trials_requested, 97);
    assert_eq!(report.trials_run, 97);
    assert_eq!(report.trials_per_thread.iter().sum::<usize>(), 97);
    assert_eq!(report.stream.count(), 97);
    assert!(report.wall.as_nanos() > 0);
}

/// The supernodal sparse engine behind every direct solve: the AMD
/// permutation, the supernode partition and every solve bit must be
/// independent of the solver's thread count, including on systems large
/// enough to engage the parallel elimination-tree solve plan.
#[test]
fn sparse_factorization_is_thread_count_invariant() {
    use emgrid::sparse::{FactorOptions, LdlFactor, TripletMatrix};

    // 5-point Laplacian on an 80 x 70 grid: 5600 unknowns, comfortably
    // past the threshold where the planned parallel solve kicks in.
    let (rows, cols) = (80usize, 70usize);
    let n = rows * cols;
    let mut t = TripletMatrix::new(n, n);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            t.push(i, i, 4.0 + 1e-3);
            if r + 1 < rows {
                let j = (r + 1) * cols + c;
                t.push(i, j, -1.0);
                t.push(j, i, -1.0);
            }
            if c + 1 < cols {
                let j = r * cols + c + 1;
                t.push(i, j, -1.0);
                t.push(j, i, -1.0);
            }
        }
    }
    let a = t.to_csr();
    let b: Vec<f64> = (0..n).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();

    let factor = |threads: usize| {
        LdlFactor::factor_with(&a, &FactorOptions::default().with_threads(threads)).unwrap()
    };
    let seq = factor(1);
    let x_seq = seq.solve(&b);
    for threads in [2, 8] {
        let par = factor(threads);
        assert_eq!(
            par.permutation().as_slice(),
            seq.permutation().as_slice(),
            "AMD permutation must not depend on threads"
        );
        assert_eq!(
            par.supernode_ptr(),
            seq.supernode_ptr(),
            "supernode partition must not depend on threads"
        );
        assert_eq!(par.l_nnz(), seq.l_nnz());
        assert_eq!(par.solve(&b), x_seq, "threads = {threads}");
    }
}

/// The dense-panel microkernel contract, crossed with threading: every
/// `(backend, thread count)` pair must produce byte-identical factor
/// arrays, solves and multi-RHS panels. CI runs this suite once under
/// `EMGRID_KERNELS=scalar` and once under `EMGRID_KERNELS=blocked`; the
/// env var picks the *baseline* backend so both directions of the
/// comparison get exercised.
#[test]
fn sparse_factorization_is_kernel_backend_invariant() {
    use emgrid::sparse::{FactorOptions, KernelBackend, LdlFactor, TripletMatrix};

    let (rows, cols) = (40usize, 33usize);
    let n = rows * cols;
    let mut t = TripletMatrix::new(n, n);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            t.push(i, i, 4.0 + 1e-3);
            if r + 1 < rows {
                t.push_sym(i, (r + 1) * cols + c, -1.0);
            }
            if c + 1 < cols {
                t.push_sym(i, r * cols + c + 1, -1.0);
            }
        }
    }
    let a = t.to_csr();
    let b: Vec<f64> = (0..n).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
    let many: Vec<Vec<f64>> = (0..5)
        .map(|s| {
            (0..n)
                .map(|i| ((i * 29 + s * 13) % 23) as f64 - 11.0)
                .collect()
        })
        .collect();

    let baseline = std::env::var("EMGRID_KERNELS")
        .ok()
        .and_then(|v| KernelBackend::parse(&v))
        .unwrap_or(KernelBackend::Scalar);
    let factor = |kernels: KernelBackend, threads: usize| {
        let opts = FactorOptions::default()
            .with_kernels(kernels)
            .with_threads(threads);
        LdlFactor::factor_with(&a, &opts).unwrap()
    };
    let seq = factor(baseline, 1);
    let x_seq = seq.solve(&b);
    let many_seq = seq.solve_many(&many);
    for kernels in [KernelBackend::Scalar, KernelBackend::Blocked] {
        for threads in [1, 2, 8] {
            let f = factor(kernels, threads);
            let label = format!("kernels = {}, threads = {threads}", kernels.label());
            assert_eq!(f.factor_parts(), seq.factor_parts(), "{label}");
            assert_eq!(f.solve(&b), x_seq, "{label}");
            assert_eq!(f.solve_many(&many), many_seq, "{label}");
        }
    }
}

/// Tentpole invariant of the parallel FEA path: the full stress field —
/// every displacement bit — is identical whether the assembly and CG
/// kernels run on 1, 2, or 8 threads.
#[test]
fn fea_stress_field_is_thread_count_invariant() {
    use emgrid::fea::SolveMethod;
    let model = CharacterizationModel {
        array: ViaArrayGeometry::square(2, 0.5, 1.0),
        margin: 0.5,
        resolution: 0.4,
        ..CharacterizationModel::default()
    };
    let solve = |threads: usize| {
        ThermalStressAnalysis::new(model)
            .with_method(SolveMethod::Iterative {
                tolerance: 1e-8,
                max_iterations: 50_000,
            })
            .with_threads(threads)
            .run()
            .expect("coarse model solves")
    };
    let seq = solve(1);
    for threads in [2, 8] {
        let par = solve(threads);
        assert_eq!(
            par.displacements(),
            seq.displacements(),
            "threads = {threads}"
        );
        assert_eq!(par.per_via_peak_stress(), seq.per_via_peak_stress());
    }
}
