//! Integration of the beyond-paper extensions: DRC-aware layout, mixed
//! per-site assignment, the analytic weakest link and the traditional
//! signoff — exercised together, across crates.

use emgrid::em::black::BlackModel;
use emgrid::pg::signoff::{current_density_signoff, WireGeometry};
use emgrid::prelude::*;
use emgrid::via::layout::{equal_area_array, footprint, DesignRules};

#[test]
fn lifetime_area_tradeoff_is_a_real_pareto_frontier() {
    // The paper's future-work point, quantified across crates: larger
    // equal-area arrays live longer (level-1 MC) but occupy more metal
    // (layout rules).
    let rules = DesignRules::default();
    let tech = Technology::default();
    let mut last_area = 0.0;
    let mut last_ttf = 0.0;
    for n in [2usize, 4, 8] {
        let geometry = equal_area_array(n, 1.0, &rules, 4.0).expect("legal configuration");
        let area = footprint(&geometry, &rules).area();
        let config = ViaArrayConfig {
            geometry,
            pattern: IntersectionPattern::Plus,
            layer_pair: emgrid::via::LayerPair::IntermediateTop,
            wire_width: 4.0,
        };
        // The reference stress table covers the paper geometries only, so
        // characterize against a stress vector of the right length derived
        // from the closest paper configuration's interior/perimeter split.
        let sigma_t = emgrid::via::stress_table::reference_per_via_stress(
            config.layer_pair,
            config.pattern,
            n,
            n,
            config.wire_width,
        );
        let result = ViaArrayMc::new(config, tech, sigma_t, 1e10).characterize(300, 9);
        let ttf = result.ecdf(FailureCriterion::ResistanceRatio(2.0)).median();
        assert!(
            area > last_area,
            "footprint must grow: {area} vs {last_area}"
        );
        assert!(ttf > last_ttf, "lifetime must grow: {ttf} vs {last_ttf}");
        last_area = area;
        last_ttf = ttf;
    }
}

#[test]
fn mixed_assignment_sits_on_the_area_lifetime_frontier() {
    let tech = Technology::default();
    let rules = DesignRules::default();
    let spec = GridSpec::custom("ext", 10, 10);
    let characterize = |config: &ViaArrayConfig| {
        ViaArrayMc::from_reference_table(config, tech, 1e10)
            .characterize(250, 3)
            .reliability(FailureCriterion::OpenCircuit)
            .unwrap()
    };
    let rel4 = characterize(&ViaArrayConfig::paper_4x4(IntersectionPattern::Plus));
    let rel8 = characterize(&ViaArrayConfig::paper_8x8(IntersectionPattern::Plus));

    let evaluate = |assignment: SiteAssignment| {
        let grid = PowerGrid::from_netlist(spec.generate()).unwrap();
        let mc = PowerGridMc::new(grid, rel4).with_assignment(assignment);
        let area: f64 = mc
            .site_reliabilities()
            .iter()
            .map(|r| footprint(&r.config.geometry, &rules).area())
            .sum();
        let ttf = mc.run(30, 21).unwrap().median_years();
        (area, ttf)
    };

    let (area4, ttf4) = evaluate(SiteAssignment::Uniform(rel4));
    let (area8, ttf8) = evaluate(SiteAssignment::Uniform(rel8));
    let (area_mixed, ttf_mixed) = evaluate(SiteAssignment::ByCurrentDensity {
        threshold: 6e9,
        low: rel4,
        high: rel8,
    });

    assert!(ttf8 > ttf4);
    assert!(area8 > area4);
    // The mixed assignment interpolates in area and gets most of the
    // lifetime benefit.
    assert!(area4 < area_mixed && area_mixed < area8);
    assert!(ttf_mixed > ttf4);
    assert!(ttf_mixed > 0.8 * ttf8, "mixed {ttf_mixed} vs 8x8 {ttf8}");
}

#[test]
fn stress_aware_analysis_is_more_conservative_than_black() {
    // The end-to-end version of the paper's motivation: at the lifetime the
    // conventional (Black's-law) signoff approves, the stress-aware Monte
    // Carlo already predicts failures.
    let tech = Technology::default();
    let black = BlackModel::from_accelerated_test(&tech, 3e10, 300.0);
    let grid = PowerGrid::from_netlist(GridSpec::custom("ext2", 10, 10).generate()).unwrap();

    let rel = ViaArrayMc::from_reference_table(
        &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
        tech,
        1e10,
    )
    .characterize(250, 13)
    .reliability(FailureCriterion::OpenCircuit)
    .unwrap();
    let stress_aware = PowerGridMc::new(grid, rel).run(25, 17).unwrap();
    let aware_years = stress_aware.worst_case_years();

    // Black passes a target twice as long as the stress-aware worst case.
    let grid2 = PowerGrid::from_netlist(GridSpec::custom("ext2", 10, 10).generate()).unwrap();
    let report = current_density_signoff(
        &grid2,
        &tech,
        &black,
        &WireGeometry::default(),
        2.0 * aware_years * SECONDS_PER_YEAR,
    );
    assert!(
        report.passes(),
        "the conventional flow should approve a lifetime the stress-aware \
         analysis rejects (gap: {} violations)",
        report.violations.len()
    );
}
