//! Integration: fast, reduced-trial versions of every figure's qualitative
//! claims — the same code paths the `emgrid-bench` binaries exercise.

use emgrid::prelude::*;

const J: f64 = 1e10;
const TRIALS: usize = 600;

fn characterize(config: &ViaArrayConfig, seed: u64) -> emgrid::via::CharacterizationResult {
    ViaArrayMc::from_reference_table(config, Technology::default(), J).characterize(TRIALS, seed)
}

#[test]
fn fig1_interior_vias_are_shielded() {
    // Reference-table view of Fig. 1 (the FEA view is covered by
    // emgrid-fea's own tests and the fig01 binary).
    let table = StressTable::reference();
    let s = table
        .lookup(
            emgrid::via::LayerPair::IntermediateTop,
            IntersectionPattern::Plus,
            4,
            4,
            2.0,
        )
        .unwrap();
    let s1x1 = table
        .lookup(
            emgrid::via::LayerPair::IntermediateTop,
            IntersectionPattern::Plus,
            1,
            1,
            2.0,
        )
        .unwrap();
    // Perimeter peak comparable to the single via; interior clearly lower.
    assert!((s[0] - s1x1[0]).abs() / s1x1[0] < 0.05);
    assert!(s[5] < 0.95 * s[0]);
}

#[test]
fn fig8a_ttf_monotone_in_failure_count() {
    let result = characterize(&ViaArrayConfig::paper_4x4(IntersectionPattern::Plus), 1);
    let mut last = 0.0;
    for n_f in [1usize, 2, 4, 8, 14, 15, 16] {
        let med = result.ecdf(FailureCriterion::ViaCount(n_f)).median();
        assert!(med > last, "n_F={n_f}: {med} <= {last}");
        last = med;
    }
    // Paper scale: medians between ~1 and ~30 years.
    assert!(last / SECONDS_PER_YEAR < 40.0);
    assert!(result.ecdf(FailureCriterion::ViaCount(1)).median() / SECONDS_PER_YEAR > 0.5);
}

#[test]
fn fig8b_pattern_lifetimes_order() {
    let crit = FailureCriterion::ViaCount(8);
    let med = |p| {
        characterize(&ViaArrayConfig::paper_4x4(p), 2)
            .ecdf(crit)
            .median()
    };
    let plus = med(IntersectionPattern::Plus);
    let tee = med(IntersectionPattern::Tee);
    let ell = med(IntersectionPattern::Ell);
    assert!(ell > tee, "ell {ell} vs tee {tee}");
    assert!(tee > plus, "tee {tee} vs plus {plus}");
}

#[test]
fn fig9_redundancy_ordering_and_crossover() {
    let r1 = characterize(&ViaArrayConfig::paper_1x1(IntersectionPattern::Plus), 3);
    let r4 = characterize(&ViaArrayConfig::paper_4x4(IntersectionPattern::Plus), 3);
    let r8 = characterize(&ViaArrayConfig::paper_8x8(IntersectionPattern::Plus), 3);
    let wc = |r: &emgrid::via::CharacterizationResult, c: FailureCriterion| {
        r.ecdf(c).worst_case() / SECONDS_PER_YEAR
    };
    let open = FailureCriterion::OpenCircuit;
    let twox = FailureCriterion::ResistanceRatio(2.0);

    // Under each criterion: 1x1 worst, then 4x4, then 8x8.
    assert!(wc(&r1, open) < wc(&r4, open));
    assert!(wc(&r4, open) < wc(&r8, open));
    assert!(wc(&r4, twox) < wc(&r8, twox));
    // The paper's crossover: the 8x8 at the *stricter* R=2x criterion still
    // beats the 4x4 at the relaxed R=inf criterion.
    assert!(
        wc(&r8, twox) > wc(&r4, open),
        "8x8@2x {} vs 4x4@inf {}",
        wc(&r8, twox),
        wc(&r4, open)
    );
}

#[test]
fn fig10_system_criteria_ordering() {
    let spec = GridSpec::custom("fig10", 10, 10);
    let grid = || PowerGrid::from_netlist(spec.generate()).unwrap();
    let run = |via_crit: FailureCriterion, system: SystemCriterion| {
        let rel = characterize(&ViaArrayConfig::paper_4x4(IntersectionPattern::Plus), 4)
            .reliability(via_crit)
            .unwrap();
        PowerGridMc::new(grid(), rel)
            .with_system_criterion(system)
            .run(30, 4)
            .unwrap()
            .median_years()
    };
    let wl_wl = run(FailureCriterion::WeakestLink, SystemCriterion::WeakestLink);
    let ir_wl = run(
        FailureCriterion::WeakestLink,
        SystemCriterion::IrDropFraction(0.10),
    );
    let ir_rinf = run(
        FailureCriterion::OpenCircuit,
        SystemCriterion::IrDropFraction(0.10),
    );
    assert!(ir_wl > wl_wl, "{ir_wl} vs {wl_wl}");
    assert!(ir_rinf > ir_wl, "{ir_rinf} vs {ir_wl}");
}
