//! Statistical acceptance of the Monte Carlo layer: Kolmogorov–Smirnov
//! goodness-of-fit of the characterized TTF distributions against their
//! lognormal reductions (the paper's two-parameter assumption, §5.1), and
//! agreement of CI-based early termination with full-budget runs.

use emgrid::prelude::*;
use emgrid::stats::ks::{ks_critical_value, ks_statistic};

const J: f64 = 1e10;
const TRIALS: usize = 600;

fn characterize(pattern: IntersectionPattern, seed: u64) -> emgrid::via::CharacterizationResult {
    ViaArrayMc::from_reference_table(
        &ViaArrayConfig::paper_4x4(pattern),
        Technology::default(),
        J,
    )
    .characterize(TRIALS, seed)
}

#[test]
fn lognormal_fit_passes_ks_for_every_pattern() {
    // The grid level samples array TTFs from a two-parameter lognormal;
    // that reduction must hold for each intersection pattern's stress map.
    for (pattern, seed) in [
        (IntersectionPattern::Plus, 61),
        (IntersectionPattern::Tee, 62),
        (IntersectionPattern::Ell, 63),
    ] {
        let result = characterize(pattern, seed);
        for criterion in [FailureCriterion::ViaCount(8), FailureCriterion::OpenCircuit] {
            let fit = result.fit_lognormal(criterion).unwrap();
            let d = ks_statistic(&result.ecdf(criterion), |x| fit.cdf(x));
            let crit = ks_critical_value(result.trials(), 0.01);
            assert!(d < crit, "{pattern}/{criterion}: KS {d} >= {crit}");
        }
    }
}

#[test]
fn streamed_statistics_match_the_post_hoc_fit() {
    // The runtime's Welford stream over ln TTF must agree with the
    // lognormal MLE computed from the collected samples afterwards.
    let result = characterize(IntersectionPattern::Plus, 71);
    let fit = result.fit_lognormal(FailureCriterion::OpenCircuit).unwrap();
    let stream = &result.report().stream;
    assert_eq!(stream.count(), result.trials() as u64);
    assert!(
        (stream.mean() - fit.mu()).abs() < 1e-9,
        "stream mean {} vs fitted mu {}",
        stream.mean(),
        fit.mu()
    );
    // The fit uses the unbiased (n-1) log-space variance, like the stream.
    assert!((stream.sd() - fit.sigma()).abs() < 1e-9);
}

#[test]
fn early_stop_fit_agrees_with_full_budget_within_ci() {
    let mc = ViaArrayMc::from_reference_table(
        &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
        Technology::default(),
        J,
    );
    let full = mc.characterize(4_000, 83);
    let full_fit = full.fit_lognormal(FailureCriterion::OpenCircuit).unwrap();

    let target = 0.05;
    let stopped = mc.characterize_with(
        4_000,
        83,
        &RuntimeConfig::sequential().with_early_stop(EarlyStop::to_half_width(target)),
    );
    let report = stopped.report();
    assert!(report.stopped_early, "0.05 target should stop well short");
    assert!(stopped.trials() < full.trials());
    let achieved = report.achieved_half_width(0.95);
    assert!(achieved <= target, "achieved {achieved} > target {target}");

    // The early-terminated fit's mu lands within its advertised CI of the
    // full-budget fit (equivalently: the median is right to ~target
    // relative precision).
    let stopped_fit = stopped
        .fit_lognormal(FailureCriterion::OpenCircuit)
        .unwrap();
    let diff = (stopped_fit.mu() - full_fit.mu()).abs();
    assert!(
        diff <= target,
        "early-stop mu {} vs full mu {}: |diff| {diff} > {target}",
        stopped_fit.mu(),
        full_fit.mu()
    );
    let median_ratio = stopped_fit.median() / full_fit.median();
    assert!(
        (median_ratio.ln()).abs() <= target,
        "median ratio {median_ratio}"
    );
}

#[test]
fn early_stopped_samples_still_fit_lognormal() {
    // Stopping on a CI target must not bias the retained prefix: the
    // truncated sample set still passes the KS test against its own fit.
    let mc = ViaArrayMc::from_reference_table(
        &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
        Technology::default(),
        J,
    );
    let stopped = mc.characterize_with(
        100_000,
        91,
        &RuntimeConfig::sequential().with_early_stop(EarlyStop::to_half_width(0.04)),
    );
    assert!(stopped.report().stopped_early);
    let d = stopped.fit_quality(FailureCriterion::OpenCircuit).unwrap();
    let crit = ks_critical_value(stopped.trials(), 0.01);
    assert!(d < crit, "KS {d} >= {crit}");
}
