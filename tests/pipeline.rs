//! Cross-crate integration: the full characterize→analyze pipeline
//! reproduces the paper's qualitative orderings at reduced trial counts.

use emgrid::prelude::*;
use emgrid::ReliabilityStudy;

fn study(grid: usize) -> ReliabilityStudy {
    ReliabilityStudy::new(GridSpec::custom("it", grid, grid)).with_trials(200, 30)
}

#[test]
fn criteria_ordering_matches_table2_shape() {
    // For a fixed grid and array: WL/WL < WL/Rinf, WL/WL < IR/WL,
    // IR/Rinf is the largest — every row of Table 2 has this shape.
    let combos = [
        (SystemCriterion::WeakestLink, FailureCriterion::WeakestLink),
        (SystemCriterion::WeakestLink, FailureCriterion::OpenCircuit),
        (
            SystemCriterion::IrDropFraction(0.10),
            FailureCriterion::WeakestLink,
        ),
        (
            SystemCriterion::IrDropFraction(0.10),
            FailureCriterion::OpenCircuit,
        ),
    ];
    let mut worst = Vec::new();
    for (system, via) in combos {
        let outcome = study(9)
            .with_system_criterion(system)
            .with_via_criterion(via)
            .run(77)
            .unwrap();
        worst.push(outcome.grid_result.median_years());
    }
    let (wl_wl, wl_rinf, ir_wl, ir_rinf) = (worst[0], worst[1], worst[2], worst[3]);
    assert!(wl_wl < wl_rinf, "{wl_wl} vs {wl_rinf}");
    assert!(wl_wl < ir_wl, "{wl_wl} vs {ir_wl}");
    assert!(ir_rinf > wl_rinf, "{ir_rinf} vs {wl_rinf}");
    assert!(ir_rinf > ir_wl, "{ir_rinf} vs {ir_wl}");
}

#[test]
fn lighter_loaded_grids_live_longer() {
    // Table 2's PG5 > PG2 > PG1 ordering comes from the lighter per-node
    // loading of the larger profiles (lower via current densities, TTF ∝
    // 1/j²); check that mechanism on a fixed mesh.
    let heavy = ReliabilityStudy::new(GridSpec::custom("h", 10, 10))
        .with_trials(150, 25)
        .run(3)
        .unwrap();
    let light_spec = GridSpec {
        load_current: GridSpec::custom("l", 10, 10).load_current * 0.6,
        ..GridSpec::custom("l", 10, 10)
    };
    let light = ReliabilityStudy::new(light_spec)
        .with_trials(150, 25)
        .run(3)
        .unwrap();
    assert!(
        light.grid_result.median_years() > heavy.grid_result.median_years(),
        "light {} vs heavy {}",
        light.grid_result.median_years(),
        heavy.grid_result.median_years()
    );
}

#[test]
fn pattern_choice_propagates_to_system_level() {
    // L-shaped intersections have lower stress → longer array TTF → longer
    // system TTF (all else equal).
    let plus = study(9)
        .with_array(ViaArrayConfig::paper_4x4(IntersectionPattern::Plus))
        .run(13)
        .unwrap();
    let ell = study(9)
        .with_array(ViaArrayConfig::paper_4x4(IntersectionPattern::Ell))
        .run(13)
        .unwrap();
    assert!(
        ell.grid_result.median_years() > plus.grid_result.median_years(),
        "ell {} vs plus {}",
        ell.grid_result.median_years(),
        plus.grid_result.median_years()
    );
}

#[test]
fn hotter_operation_shortens_system_life() {
    let cool = study(9).run(21).unwrap();
    let hot = study(9)
        .with_technology(Technology {
            operating_temperature_c: 125.0,
            ..Technology::default()
        })
        .run(21)
        .unwrap();
    assert!(
        hot.grid_result.median_years() < cool.grid_result.median_years(),
        "hot {} vs cool {}",
        hot.grid_result.median_years(),
        cool.grid_result.median_years()
    );
}
