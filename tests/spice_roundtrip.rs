//! Integration: generated benchmarks survive serialization and re-analysis.

use emgrid::prelude::*;
use emgrid::spice::writer::write_string;

#[test]
fn generated_deck_round_trips_and_analyzes_identically() {
    let spec = GridSpec::custom("rt", 12, 12);
    let original = spec.generate();
    let deck = write_string(&original);
    let reparsed = parse(&deck).expect("generated deck parses");

    let g1 = PowerGrid::from_netlist(original).unwrap();
    let g2 = PowerGrid::from_netlist(reparsed).unwrap();
    assert_eq!(g1.via_sites().len(), g2.via_sites().len());

    let r1 = IrDropReport::evaluate(&g1, g1.nominal_solution());
    let r2 = IrDropReport::evaluate(&g2, g2.nominal_solution());
    assert!((r1.worst_drop - r2.worst_drop).abs() < 1e-9);
}

#[test]
fn reliability_analysis_of_parsed_deck_matches_generated() {
    let spec = GridSpec::custom("rt2", 8, 8);
    let rel = ViaArrayMc::from_reference_table(
        &ViaArrayConfig::paper_4x4(IntersectionPattern::Plus),
        Technology::default(),
        1e10,
    )
    .characterize(150, 41)
    .reliability(FailureCriterion::OpenCircuit)
    .unwrap();

    let from_gen = PowerGrid::from_netlist(spec.generate()).unwrap();
    let from_text =
        PowerGrid::from_netlist(parse(&write_string(&spec.generate())).unwrap()).unwrap();

    let a = PowerGridMc::new(from_gen, rel).run(10, 5).unwrap();
    let b = PowerGridMc::new(from_text, rel).run(10, 5).unwrap();
    for (x, y) in a.ttf_seconds().iter().zip(b.ttf_seconds()) {
        assert!((x - y).abs() / x < 1e-9, "{x} vs {y}");
    }
}

#[test]
fn failure_injection_degrades_the_grid() {
    // Failure injection: remove via arrays one by one. The worst IR drop is
    // the minimum over ALL nodes, and rerouting can improve an individual
    // node slightly, so strict per-step monotonicity does not hold — but
    // the drop must never improve materially, and the cumulative effect of
    // several failures must clearly degrade the grid.
    use emgrid::sparse::IncrementalSolver;

    let grid = PowerGrid::from_netlist(GridSpec::custom("fi", 10, 10).generate()).unwrap();
    let dc = grid.dc();
    let mut solver = IncrementalSolver::new(dc.matrix()).unwrap();
    let rhs = dc.rhs().to_vec();
    let initial = IrDropReport::evaluate(&grid, grid.nominal_solution()).worst_drop;
    let mut last_drop = initial;

    // Cluster the failures near the hotspot so their effect compounds.
    for k in [44usize, 45, 54, 55, 46, 56, 35, 36] {
        let site = &grid.via_sites()[k];
        let (Some(i), Some(j)) = (dc.unknown_index(site.lower), dc.unknown_index(site.upper))
        else {
            continue;
        };
        solver.update_edge(i, j, -1.0 / site.resistance).unwrap();
        let sol = dc.solution_from_unknowns(&solver.solve(&rhs).unwrap());
        let drop = IrDropReport::evaluate(&grid, &sol).worst_drop;
        assert!(
            drop >= last_drop * 0.99,
            "removing a via materially improved the IR drop: {last_drop} -> {drop}"
        );
        last_drop = drop;
    }
    assert!(
        last_drop > initial * 1.05,
        "eight clustered failures should visibly degrade the grid: {initial} -> {last_drop}"
    );
}
