//! Workspace umbrella for the `emgrid` reproduction: hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`).
//!
//! The library surface lives in the [`emgrid`] facade crate; this package
//! re-exports it so examples and integration tests read naturally.

pub use emgrid::*;
